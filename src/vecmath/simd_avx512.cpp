// AVX-512F kernels. Compiled with -mavx512f (see vecmath/CMakeLists.txt);
// only reached when CPUID reports AVX-512 Foundation at runtime.
//
// Shared chunk pattern: 32 floats per iteration into two 16-lane
// accumulators, one 16-wide mop-up into acc0, and a masked tail into acc1
// (masked-off lanes contribute exact zeros, so no scalar tail is needed).
// The fused batch kernels replicate this per-row order exactly, making
// batch results bit-identical to the single-pair kernels.
#include <immintrin.h>

#include <cstddef>

#include "vecmath/kernel_table.h"

namespace proximity::detail {

namespace {

inline __mmask16 TailMask(std::size_t rem) noexcept {
  return static_cast<__mmask16>((1u << rem) - 1u);
}

inline void PrefetchRow(const float* p) noexcept {
  _mm_prefetch(reinterpret_cast<const char*>(p), _MM_HINT_T0);
  _mm_prefetch(reinterpret_cast<const char*>(p) + 64, _MM_HINT_T0);
}

// In-loop prefetch distance for the fused cores, in floats (1 KiB). Rows of
// a batch are contiguous, so running past a row's end prefetches the next
// group's data; prefetch hints never fault, so overshooting the block at
// the very end is harmless.
constexpr std::size_t kPfAhead = 256;

// ------------------------------------------------------- single-pair ----

float L2One(const float* a, const float* b, std::size_t n) {
  __m512 acc0 = _mm512_setzero_ps(), acc1 = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m512 d0 =
        _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    acc0 = _mm512_fmadd_ps(d0, d0, acc0);
    const __m512 d1 = _mm512_sub_ps(_mm512_loadu_ps(a + i + 16),
                                    _mm512_loadu_ps(b + i + 16));
    acc1 = _mm512_fmadd_ps(d1, d1, acc1);
  }
  if (i + 16 <= n) {
    const __m512 d =
        _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    acc0 = _mm512_fmadd_ps(d, d, acc0);
    i += 16;
  }
  if (i < n) {
    const __mmask16 m = TailMask(n - i);
    const __m512 d = _mm512_sub_ps(_mm512_maskz_loadu_ps(m, a + i),
                                   _mm512_maskz_loadu_ps(m, b + i));
    acc1 = _mm512_fmadd_ps(d, d, acc1);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

float IpOne(const float* a, const float* b, std::size_t n) {
  __m512 acc0 = _mm512_setzero_ps(), acc1 = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 16),
                           _mm512_loadu_ps(b + i + 16), acc1);
  }
  if (i + 16 <= n) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
    i += 16;
  }
  if (i < n) {
    const __mmask16 m = TailMask(n - i);
    acc1 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(m, a + i),
                           _mm512_maskz_loadu_ps(m, b + i), acc1);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

float SqNormOne(const float* a, std::size_t n) {
  __m512 acc0 = _mm512_setzero_ps(), acc1 = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m512 v0 = _mm512_loadu_ps(a + i);
    acc0 = _mm512_fmadd_ps(v0, v0, acc0);
    const __m512 v1 = _mm512_loadu_ps(a + i + 16);
    acc1 = _mm512_fmadd_ps(v1, v1, acc1);
  }
  if (i + 16 <= n) {
    const __m512 v = _mm512_loadu_ps(a + i);
    acc0 = _mm512_fmadd_ps(v, v, acc0);
    i += 16;
  }
  if (i < n) {
    const __m512 v = _mm512_maskz_loadu_ps(TailMask(n - i), a + i);
    acc1 = _mm512_fmadd_ps(v, v, acc1);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

// ------------------------------------------------- fused batch cores ----
// Four rows in flight sharing the query loads; per-row accumulator order
// matches the single-pair kernels above exactly.

void L2Rows4(const float* q, const float* r0, const float* r1,
             const float* r2, const float* r3, std::size_t n, float* out) {
  __m512 a00 = _mm512_setzero_ps(), a01 = _mm512_setzero_ps();
  __m512 a10 = _mm512_setzero_ps(), a11 = _mm512_setzero_ps();
  __m512 a20 = _mm512_setzero_ps(), a21 = _mm512_setzero_ps();
  __m512 a30 = _mm512_setzero_ps(), a31 = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    _mm_prefetch(reinterpret_cast<const char*>(r0 + i + kPfAhead),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r0 + i + kPfAhead + 16),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r1 + i + kPfAhead),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r1 + i + kPfAhead + 16),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r2 + i + kPfAhead),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r2 + i + kPfAhead + 16),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r3 + i + kPfAhead),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r3 + i + kPfAhead + 16),
                 _MM_HINT_T0);
    const __m512 q0 = _mm512_loadu_ps(q + i);
    const __m512 q1 = _mm512_loadu_ps(q + i + 16);
    __m512 d;
    d = _mm512_sub_ps(q0, _mm512_loadu_ps(r0 + i));
    a00 = _mm512_fmadd_ps(d, d, a00);
    d = _mm512_sub_ps(q1, _mm512_loadu_ps(r0 + i + 16));
    a01 = _mm512_fmadd_ps(d, d, a01);
    d = _mm512_sub_ps(q0, _mm512_loadu_ps(r1 + i));
    a10 = _mm512_fmadd_ps(d, d, a10);
    d = _mm512_sub_ps(q1, _mm512_loadu_ps(r1 + i + 16));
    a11 = _mm512_fmadd_ps(d, d, a11);
    d = _mm512_sub_ps(q0, _mm512_loadu_ps(r2 + i));
    a20 = _mm512_fmadd_ps(d, d, a20);
    d = _mm512_sub_ps(q1, _mm512_loadu_ps(r2 + i + 16));
    a21 = _mm512_fmadd_ps(d, d, a21);
    d = _mm512_sub_ps(q0, _mm512_loadu_ps(r3 + i));
    a30 = _mm512_fmadd_ps(d, d, a30);
    d = _mm512_sub_ps(q1, _mm512_loadu_ps(r3 + i + 16));
    a31 = _mm512_fmadd_ps(d, d, a31);
  }
  if (i + 16 <= n) {
    const __m512 q0 = _mm512_loadu_ps(q + i);
    __m512 d;
    d = _mm512_sub_ps(q0, _mm512_loadu_ps(r0 + i));
    a00 = _mm512_fmadd_ps(d, d, a00);
    d = _mm512_sub_ps(q0, _mm512_loadu_ps(r1 + i));
    a10 = _mm512_fmadd_ps(d, d, a10);
    d = _mm512_sub_ps(q0, _mm512_loadu_ps(r2 + i));
    a20 = _mm512_fmadd_ps(d, d, a20);
    d = _mm512_sub_ps(q0, _mm512_loadu_ps(r3 + i));
    a30 = _mm512_fmadd_ps(d, d, a30);
    i += 16;
  }
  if (i < n) {
    const __mmask16 m = TailMask(n - i);
    const __m512 q0 = _mm512_maskz_loadu_ps(m, q + i);
    __m512 d;
    d = _mm512_sub_ps(q0, _mm512_maskz_loadu_ps(m, r0 + i));
    a01 = _mm512_fmadd_ps(d, d, a01);
    d = _mm512_sub_ps(q0, _mm512_maskz_loadu_ps(m, r1 + i));
    a11 = _mm512_fmadd_ps(d, d, a11);
    d = _mm512_sub_ps(q0, _mm512_maskz_loadu_ps(m, r2 + i));
    a21 = _mm512_fmadd_ps(d, d, a21);
    d = _mm512_sub_ps(q0, _mm512_maskz_loadu_ps(m, r3 + i));
    a31 = _mm512_fmadd_ps(d, d, a31);
  }
  out[0] = _mm512_reduce_add_ps(_mm512_add_ps(a00, a01));
  out[1] = _mm512_reduce_add_ps(_mm512_add_ps(a10, a11));
  out[2] = _mm512_reduce_add_ps(_mm512_add_ps(a20, a21));
  out[3] = _mm512_reduce_add_ps(_mm512_add_ps(a30, a31));
}

// Six rows in flight for the L2 batch scan: 12 zmm accumulators plus two
// query registers, fully unrolled so nothing spills. More row streams keep
// more L3 misses in flight in the large-batch regime. Per-row accumulator
// order is unchanged, so results stay bit-identical to L2One.
void L2Rows6(const float* q, const float* r0, const float* r1,
             const float* r2, const float* r3, const float* r4,
             const float* r5, std::size_t n, float* out) {
  __m512 a00 = _mm512_setzero_ps(), a01 = _mm512_setzero_ps();
  __m512 a10 = _mm512_setzero_ps(), a11 = _mm512_setzero_ps();
  __m512 a20 = _mm512_setzero_ps(), a21 = _mm512_setzero_ps();
  __m512 a30 = _mm512_setzero_ps(), a31 = _mm512_setzero_ps();
  __m512 a40 = _mm512_setzero_ps(), a41 = _mm512_setzero_ps();
  __m512 a50 = _mm512_setzero_ps(), a51 = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    _mm_prefetch(reinterpret_cast<const char*>(r0 + i + kPfAhead),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r0 + i + kPfAhead + 16),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r1 + i + kPfAhead),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r1 + i + kPfAhead + 16),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r2 + i + kPfAhead),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r2 + i + kPfAhead + 16),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r3 + i + kPfAhead),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r3 + i + kPfAhead + 16),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r4 + i + kPfAhead),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r4 + i + kPfAhead + 16),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r5 + i + kPfAhead),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r5 + i + kPfAhead + 16),
                 _MM_HINT_T0);
    const __m512 q0 = _mm512_loadu_ps(q + i);
    const __m512 q1 = _mm512_loadu_ps(q + i + 16);
    __m512 d;
    d = _mm512_sub_ps(q0, _mm512_loadu_ps(r0 + i));
    a00 = _mm512_fmadd_ps(d, d, a00);
    d = _mm512_sub_ps(q1, _mm512_loadu_ps(r0 + i + 16));
    a01 = _mm512_fmadd_ps(d, d, a01);
    d = _mm512_sub_ps(q0, _mm512_loadu_ps(r1 + i));
    a10 = _mm512_fmadd_ps(d, d, a10);
    d = _mm512_sub_ps(q1, _mm512_loadu_ps(r1 + i + 16));
    a11 = _mm512_fmadd_ps(d, d, a11);
    d = _mm512_sub_ps(q0, _mm512_loadu_ps(r2 + i));
    a20 = _mm512_fmadd_ps(d, d, a20);
    d = _mm512_sub_ps(q1, _mm512_loadu_ps(r2 + i + 16));
    a21 = _mm512_fmadd_ps(d, d, a21);
    d = _mm512_sub_ps(q0, _mm512_loadu_ps(r3 + i));
    a30 = _mm512_fmadd_ps(d, d, a30);
    d = _mm512_sub_ps(q1, _mm512_loadu_ps(r3 + i + 16));
    a31 = _mm512_fmadd_ps(d, d, a31);
    d = _mm512_sub_ps(q0, _mm512_loadu_ps(r4 + i));
    a40 = _mm512_fmadd_ps(d, d, a40);
    d = _mm512_sub_ps(q1, _mm512_loadu_ps(r4 + i + 16));
    a41 = _mm512_fmadd_ps(d, d, a41);
    d = _mm512_sub_ps(q0, _mm512_loadu_ps(r5 + i));
    a50 = _mm512_fmadd_ps(d, d, a50);
    d = _mm512_sub_ps(q1, _mm512_loadu_ps(r5 + i + 16));
    a51 = _mm512_fmadd_ps(d, d, a51);
  }
  if (i + 16 <= n) {
    const __m512 q0 = _mm512_loadu_ps(q + i);
    __m512 d;
    d = _mm512_sub_ps(q0, _mm512_loadu_ps(r0 + i));
    a00 = _mm512_fmadd_ps(d, d, a00);
    d = _mm512_sub_ps(q0, _mm512_loadu_ps(r1 + i));
    a10 = _mm512_fmadd_ps(d, d, a10);
    d = _mm512_sub_ps(q0, _mm512_loadu_ps(r2 + i));
    a20 = _mm512_fmadd_ps(d, d, a20);
    d = _mm512_sub_ps(q0, _mm512_loadu_ps(r3 + i));
    a30 = _mm512_fmadd_ps(d, d, a30);
    d = _mm512_sub_ps(q0, _mm512_loadu_ps(r4 + i));
    a40 = _mm512_fmadd_ps(d, d, a40);
    d = _mm512_sub_ps(q0, _mm512_loadu_ps(r5 + i));
    a50 = _mm512_fmadd_ps(d, d, a50);
    i += 16;
  }
  if (i < n) {
    const __mmask16 m = TailMask(n - i);
    const __m512 q0 = _mm512_maskz_loadu_ps(m, q + i);
    __m512 d;
    d = _mm512_sub_ps(q0, _mm512_maskz_loadu_ps(m, r0 + i));
    a01 = _mm512_fmadd_ps(d, d, a01);
    d = _mm512_sub_ps(q0, _mm512_maskz_loadu_ps(m, r1 + i));
    a11 = _mm512_fmadd_ps(d, d, a11);
    d = _mm512_sub_ps(q0, _mm512_maskz_loadu_ps(m, r2 + i));
    a21 = _mm512_fmadd_ps(d, d, a21);
    d = _mm512_sub_ps(q0, _mm512_maskz_loadu_ps(m, r3 + i));
    a31 = _mm512_fmadd_ps(d, d, a31);
    d = _mm512_sub_ps(q0, _mm512_maskz_loadu_ps(m, r4 + i));
    a41 = _mm512_fmadd_ps(d, d, a41);
    d = _mm512_sub_ps(q0, _mm512_maskz_loadu_ps(m, r5 + i));
    a51 = _mm512_fmadd_ps(d, d, a51);
  }
  out[0] = _mm512_reduce_add_ps(_mm512_add_ps(a00, a01));
  out[1] = _mm512_reduce_add_ps(_mm512_add_ps(a10, a11));
  out[2] = _mm512_reduce_add_ps(_mm512_add_ps(a20, a21));
  out[3] = _mm512_reduce_add_ps(_mm512_add_ps(a30, a31));
  out[4] = _mm512_reduce_add_ps(_mm512_add_ps(a40, a41));
  out[5] = _mm512_reduce_add_ps(_mm512_add_ps(a50, a51));
}

void IpRows4(const float* q, const float* r0, const float* r1,
             const float* r2, const float* r3, std::size_t n, float* out) {
  __m512 a00 = _mm512_setzero_ps(), a01 = _mm512_setzero_ps();
  __m512 a10 = _mm512_setzero_ps(), a11 = _mm512_setzero_ps();
  __m512 a20 = _mm512_setzero_ps(), a21 = _mm512_setzero_ps();
  __m512 a30 = _mm512_setzero_ps(), a31 = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    _mm_prefetch(reinterpret_cast<const char*>(r0 + i + kPfAhead),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r0 + i + kPfAhead + 16),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r1 + i + kPfAhead),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r1 + i + kPfAhead + 16),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r2 + i + kPfAhead),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r2 + i + kPfAhead + 16),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r3 + i + kPfAhead),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r3 + i + kPfAhead + 16),
                 _MM_HINT_T0);
    const __m512 q0 = _mm512_loadu_ps(q + i);
    const __m512 q1 = _mm512_loadu_ps(q + i + 16);
    a00 = _mm512_fmadd_ps(q0, _mm512_loadu_ps(r0 + i), a00);
    a01 = _mm512_fmadd_ps(q1, _mm512_loadu_ps(r0 + i + 16), a01);
    a10 = _mm512_fmadd_ps(q0, _mm512_loadu_ps(r1 + i), a10);
    a11 = _mm512_fmadd_ps(q1, _mm512_loadu_ps(r1 + i + 16), a11);
    a20 = _mm512_fmadd_ps(q0, _mm512_loadu_ps(r2 + i), a20);
    a21 = _mm512_fmadd_ps(q1, _mm512_loadu_ps(r2 + i + 16), a21);
    a30 = _mm512_fmadd_ps(q0, _mm512_loadu_ps(r3 + i), a30);
    a31 = _mm512_fmadd_ps(q1, _mm512_loadu_ps(r3 + i + 16), a31);
  }
  if (i + 16 <= n) {
    const __m512 q0 = _mm512_loadu_ps(q + i);
    a00 = _mm512_fmadd_ps(q0, _mm512_loadu_ps(r0 + i), a00);
    a10 = _mm512_fmadd_ps(q0, _mm512_loadu_ps(r1 + i), a10);
    a20 = _mm512_fmadd_ps(q0, _mm512_loadu_ps(r2 + i), a20);
    a30 = _mm512_fmadd_ps(q0, _mm512_loadu_ps(r3 + i), a30);
    i += 16;
  }
  if (i < n) {
    const __mmask16 m = TailMask(n - i);
    const __m512 q0 = _mm512_maskz_loadu_ps(m, q + i);
    a01 = _mm512_fmadd_ps(q0, _mm512_maskz_loadu_ps(m, r0 + i), a01);
    a11 = _mm512_fmadd_ps(q0, _mm512_maskz_loadu_ps(m, r1 + i), a11);
    a21 = _mm512_fmadd_ps(q0, _mm512_maskz_loadu_ps(m, r2 + i), a21);
    a31 = _mm512_fmadd_ps(q0, _mm512_maskz_loadu_ps(m, r3 + i), a31);
  }
  out[0] = _mm512_reduce_add_ps(_mm512_add_ps(a00, a01));
  out[1] = _mm512_reduce_add_ps(_mm512_add_ps(a10, a11));
  out[2] = _mm512_reduce_add_ps(_mm512_add_ps(a20, a21));
  out[3] = _mm512_reduce_add_ps(_mm512_add_ps(a30, a31));
}

// Two rows in flight, accumulating dot and row-norm together (one pass per
// row). dot order matches IpOne; norm order matches SqNormOne.
void CosRows2(const float* q, const float* r0, const float* r1,
              std::size_t n, float* dot_out, float* norm_out) {
  __m512 d00 = _mm512_setzero_ps(), d01 = _mm512_setzero_ps();
  __m512 d10 = _mm512_setzero_ps(), d11 = _mm512_setzero_ps();
  __m512 n00 = _mm512_setzero_ps(), n01 = _mm512_setzero_ps();
  __m512 n10 = _mm512_setzero_ps(), n11 = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    _mm_prefetch(reinterpret_cast<const char*>(r0 + i + kPfAhead),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r0 + i + kPfAhead + 16),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r1 + i + kPfAhead),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r1 + i + kPfAhead + 16),
                 _MM_HINT_T0);
    const __m512 q0 = _mm512_loadu_ps(q + i);
    const __m512 q1 = _mm512_loadu_ps(q + i + 16);
    const __m512 r0c0 = _mm512_loadu_ps(r0 + i);
    d00 = _mm512_fmadd_ps(q0, r0c0, d00);
    n00 = _mm512_fmadd_ps(r0c0, r0c0, n00);
    const __m512 r0c1 = _mm512_loadu_ps(r0 + i + 16);
    d01 = _mm512_fmadd_ps(q1, r0c1, d01);
    n01 = _mm512_fmadd_ps(r0c1, r0c1, n01);
    const __m512 r1c0 = _mm512_loadu_ps(r1 + i);
    d10 = _mm512_fmadd_ps(q0, r1c0, d10);
    n10 = _mm512_fmadd_ps(r1c0, r1c0, n10);
    const __m512 r1c1 = _mm512_loadu_ps(r1 + i + 16);
    d11 = _mm512_fmadd_ps(q1, r1c1, d11);
    n11 = _mm512_fmadd_ps(r1c1, r1c1, n11);
  }
  if (i + 16 <= n) {
    const __m512 q0 = _mm512_loadu_ps(q + i);
    const __m512 r0c = _mm512_loadu_ps(r0 + i);
    d00 = _mm512_fmadd_ps(q0, r0c, d00);
    n00 = _mm512_fmadd_ps(r0c, r0c, n00);
    const __m512 r1c = _mm512_loadu_ps(r1 + i);
    d10 = _mm512_fmadd_ps(q0, r1c, d10);
    n10 = _mm512_fmadd_ps(r1c, r1c, n10);
    i += 16;
  }
  if (i < n) {
    const __mmask16 m = TailMask(n - i);
    const __m512 q0 = _mm512_maskz_loadu_ps(m, q + i);
    const __m512 r0c = _mm512_maskz_loadu_ps(m, r0 + i);
    d01 = _mm512_fmadd_ps(q0, r0c, d01);
    n01 = _mm512_fmadd_ps(r0c, r0c, n01);
    const __m512 r1c = _mm512_maskz_loadu_ps(m, r1 + i);
    d11 = _mm512_fmadd_ps(q0, r1c, d11);
    n11 = _mm512_fmadd_ps(r1c, r1c, n11);
  }
  dot_out[0] = _mm512_reduce_add_ps(_mm512_add_ps(d00, d01));
  dot_out[1] = _mm512_reduce_add_ps(_mm512_add_ps(d10, d11));
  norm_out[0] = _mm512_reduce_add_ps(_mm512_add_ps(n00, n01));
  norm_out[1] = _mm512_reduce_add_ps(_mm512_add_ps(n10, n11));
}

// ----------------------------------------------------- batch drivers ----

void BatchL2(const float* q, const float* base, std::size_t count,
             std::size_t dim, float* out) {
  std::size_t r = 0;
  for (; r + 6 <= count; r += 6) {
    L2Rows6(q, base + r * dim, base + (r + 1) * dim, base + (r + 2) * dim,
            base + (r + 3) * dim, base + (r + 4) * dim, base + (r + 5) * dim,
            dim, out + r);
  }
  for (; r + 4 <= count; r += 4) {
    L2Rows4(q, base + r * dim, base + (r + 1) * dim, base + (r + 2) * dim,
            base + (r + 3) * dim, dim, out + r);
  }
  for (; r < count; ++r) out[r] = L2One(q, base + r * dim, dim);
}

void BatchIp(const float* q, const float* base, std::size_t count,
             std::size_t dim, float* out) {
  std::size_t r = 0;
  for (; r + 4 <= count; r += 4) {
    if (r + 8 <= count) PrefetchRow(base + (r + 4) * dim);
    IpRows4(q, base + r * dim, base + (r + 1) * dim, base + (r + 2) * dim,
            base + (r + 3) * dim, dim, out + r);
  }
  for (; r < count; ++r) out[r] = IpOne(q, base + r * dim, dim);
}

void BatchCos(const float* q, const float* base, std::size_t count,
              std::size_t dim, float* out) {
  const float qnorm = internal::SqrtNonNeg(SqNormOne(q, dim));
  std::size_t r = 0;
  float dots[2], norms[2];
  for (; r + 2 <= count; r += 2) {
    if (r + 4 <= count) PrefetchRow(base + (r + 2) * dim);
    CosRows2(q, base + r * dim, base + (r + 1) * dim, dim, dots, norms);
    out[r] = internal::FinishCosine(dots[0], qnorm, norms[0]);
    out[r + 1] = internal::FinishCosine(dots[1], qnorm, norms[1]);
  }
  for (; r < count; ++r) {
    const float* row = base + r * dim;
    out[r] = internal::FinishCosine(IpOne(q, row, dim), qnorm,
                                    SqNormOne(row, dim));
  }
}

}  // namespace

const KernelTable* Avx512Table() noexcept {
  static const KernelTable table = {
      "avx512", L2One, IpOne, SqNormOne, BatchL2, BatchIp, BatchCos,
  };
  return &table;
}

}  // namespace proximity::detail
