// Cache-line-blocked scalar-quantized vector storage: the compressed
// primary representation of the two-level (scan compressed, rerank
// float) search path from Intel SVS/LVQ, DESIGN.md §11.
//
// Each stored vector is one contiguous block:
//
//   [scale f32][bias f32][sqnorm f32][reserved u32][codes ...][pad]
//   `-------------- 16-byte header --------------'
//
// padded so the block stride is a multiple of 64 bytes — a block never
// shares a cache line with its neighbors, and the scan loop can issue
// whole-block software prefetches a fixed number of blocks ahead.
// Codes are per-vector affine scalar quantization (x̂ = bias + scale*c):
// 8-bit (one byte per dimension) or 4-bit (half-split nibble layout,
// see quant_kernel_table.h). `sqnorm` is the float row's squared L2
// norm, so cosine needs only one fused code pass plus the shared
// FinishCosine epilogue.
//
// Encoding is deterministic from the float data (no RNG, no training),
// which is what lets index serialization re-derive the codes on load
// instead of persisting them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "vecmath/metric.h"

namespace proximity {

/// Primary-scan storage layouts, in factory/config `storage=` order.
enum class StorageLayout : std::uint8_t {
  kFloat32 = 0,  // uncompressed rows, the classic exact scan
  kSq8 = 1,      // 8-bit scalar quantization, per-vector scale/bias
  kSq4 = 2,      // 4-bit scalar quantization, per-vector scale/bias
};

/// Name used in Describe(), configs, and the CLI `storage=` knob.
std::string_view StorageLayoutName(StorageLayout layout) noexcept;

/// Parses "float32" / "sq8" / "sq4"; returns false on anything else.
bool ParseStorageLayout(std::string_view name, StorageLayout* out) noexcept;

class CompressedStore {
 public:
  /// Header bytes preceding the codes of every block.
  static constexpr std::size_t kHeaderBytes = 16;
  /// Blocks are padded to a multiple of this (one cache line).
  static constexpr std::size_t kBlockAlign = 64;
  /// The scan loop prefetches the block this many rows ahead: one row of
  /// AVX2 decode (~50-60 ns at 768-d) is shorter than DRAM latency, two
  /// rows (~1.6 KiB ahead) reliably covers it. See DESIGN.md §11.
  static constexpr std::size_t kPrefetchRowsAhead = 2;

  /// An empty store that cannot hold rows (dim 0); assign a real one.
  CompressedStore() = default;

  /// `layout` must be kSq8 or kSq4 — float rows live in Matrix, not here.
  CompressedStore(std::size_t dim, StorageLayout layout);

  std::size_t dim() const noexcept { return dim_; }
  std::size_t rows() const noexcept { return rows_; }
  bool empty() const noexcept { return rows_ == 0; }
  StorageLayout layout() const noexcept { return layout_; }

  /// Bytes per row block (header + codes + pad), multiple of 64.
  std::size_t block_stride() const noexcept { return stride_; }
  /// Total bytes a full scan touches (rows * block_stride).
  std::size_t bytes() const noexcept { return rows_ * stride_; }

  void Reserve(std::size_t rows) { data_.reserve(rows * stride_); }
  void Clear() noexcept {
    data_.clear();
    rows_ = 0;
  }

  /// Quantizes and appends one float row. Deterministic: the same floats
  /// always produce the same codes.
  void AppendRow(std::span<const float> vec);

  /// Per-row quantization parameters (scale is the per-dimension step;
  /// the reconstruction error of any coordinate is at most scale/2).
  float RowScale(std::size_t r) const noexcept;
  float RowBias(std::size_t r) const noexcept;
  /// Squared L2 norm of the original float row (not the decoded one).
  float RowSqNorm(std::size_t r) const noexcept;

  /// Dequantizes row r into `out` (size dim); tests and debugging only —
  /// search paths accumulate straight from codes.
  void DecodeRow(std::size_t r, std::span<float> out) const;

  /// Distances from `query` to rows [row_lo, row_lo+count) under
  /// `metric` (smaller = closer: inner product negated, cosine finished
  /// against the stored float norms). Runs the active SIMD level's
  /// quantized kernels with whole-block prefetch kPrefetchRowsAhead rows
  /// ahead. Writes `count` results into `out`.
  void ScanRange(Metric metric, std::span<const float> query,
                 std::size_t row_lo, std::size_t count, float* out) const;

  /// ScanRange over every row.
  void Scan(Metric metric, std::span<const float> query, float* out) const {
    ScanRange(metric, query, 0, rows_, out);
  }

  /// Distances to the scattered rows ids[0..count), prefetching the next
  /// block one id ahead — the compressed analogue of GatherDistance for
  /// graph expansion.
  void GatherScan(Metric metric, std::span<const float> query,
                  const std::uint32_t* ids, std::size_t count,
                  float* out) const;

  /// Single-row distance (graph entry points, spot checks).
  float RowDistance(Metric metric, std::span<const float> query,
                    std::size_t r) const;

 private:
  const std::uint8_t* Block(std::size_t r) const noexcept {
    return data_.data() + r * stride_;
  }

  std::size_t dim_ = 0;
  StorageLayout layout_ = StorageLayout::kSq8;
  std::size_t code_bytes_ = 0;  // bytes of codes per row
  std::size_t stride_ = 0;      // kHeaderBytes + code_bytes_, padded to 64
  std::size_t rows_ = 0;
  std::vector<std::uint8_t> data_;
};

}  // namespace proximity
