// Scalar-product / distance kernels behind a runtime-dispatched SIMD layer.
//
// The original implementation uses Rust Portable-SIMD for vector
// comparisons (§4.1). Here every kernel exists in explicit AVX2, AVX-512,
// and NEON variants plus a portable 4x-unrolled fallback; the best level
// the CPU supports is selected once at startup (CPUID / compile-time on
// aarch64) and all callers upgrade transparently through this header.
//
// Guarantees:
//  - The batch kernels are bit-identical to the single-pair kernels of the
//    active level, so routing a scan through BatchDistance/GatherDistance
//    never changes top-k results.
//  - Levels differ from each other only by floating-point summation order
//    (~1e-6 relative); the portable table is the reference.
//  - `PROXIMITY_SIMD=portable|avx2|avx512|neon` in the environment pins the
//    startup choice (ignored when the level is unavailable).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

#include "vecmath/metric.h"

namespace proximity {

/// Kernel implementation tiers, worst to best.
enum class SimdLevel { kPortable = 0, kNeon, kAvx2, kAvx512 };

/// Name used in logs, benches, and the PROXIMITY_SIMD env override.
std::string_view SimdLevelName(SimdLevel level) noexcept;

/// True when `level` is both compiled in and supported by this CPU.
bool SimdLevelSupported(SimdLevel level) noexcept;

/// The level all kernels below currently dispatch to. Resolved once at
/// first use: the best supported level, unless PROXIMITY_SIMD pins one.
SimdLevel ActiveSimdLevel() noexcept;

/// Forces the active level (tests / benches); returns false and leaves the
/// dispatch untouched when the level is unsupported. Not thread-safe with
/// concurrent searches — switch only at startup or in single-threaded code.
bool SetActiveSimdLevel(SimdLevel level) noexcept;

/// Squared L2 distance between a and b. Sizes must match.
float L2SquaredDistance(std::span<const float> a,
                        std::span<const float> b) noexcept;

/// Inner product <a, b>.
float InnerProduct(std::span<const float> a, std::span<const float> b) noexcept;

/// Cosine distance 1 - <a,b>/(|a||b|). Returns 1 if either vector is zero.
float CosineDistance(std::span<const float> a,
                     std::span<const float> b) noexcept;

/// Squared L2 norm |a|^2.
float SquaredNorm(std::span<const float> a) noexcept;

/// Distance under the given metric, smaller = closer for all metrics
/// (inner product is negated).
float Distance(Metric metric, std::span<const float> a,
               std::span<const float> b) noexcept;

/// Computes distances from `query` to `count` contiguous row-major vectors
/// starting at `base` (each of dimension `dim`), writing into `out`
/// (length `count`). This is the hot loop of both FlatIndex and the
/// Proximity cache's linear key scan; it runs the fused multi-row SIMD
/// kernels of the active level.
void BatchDistance(Metric metric, std::span<const float> query,
                   const float* base, std::size_t count, std::size_t dim,
                   float* out) noexcept;

/// BatchDistance with precomputed per-row squared norms (`row_norms[i]` =
/// SquaredNorm of row i, e.g. from Matrix::RowNorms()). For kCosine this
/// skips the per-row norm pass (pre-normalized cosine: one fused inner
/// product per row). For kL2 it uses the decomposition
/// ||q-b||^2 = ||q||^2 + ||b||^2 - 2<q,b> (clamped at 0) — cheaper but not
/// bit-identical to the direct kernel, so exactness-critical callers keep
/// the plain BatchDistance for L2. kInnerProduct ignores the norms.
void BatchDistanceWithNorms(Metric metric, std::span<const float> query,
                            const float* base, const float* row_norms,
                            std::size_t count, std::size_t dim,
                            float* out) noexcept;

/// Distances from `query` to the scattered rows base[ids[j]*dim .. +dim)
/// for j in [0, count), with software prefetch of upcoming rows. Results
/// are bit-identical to Distance() at the active level. This is the batch
/// path for HNSW neighbor expansion and filtered flat scans.
void GatherDistance(Metric metric, std::span<const float> query,
                    const float* base, std::size_t dim,
                    const std::uint32_t* ids, std::size_t count,
                    float* out) noexcept;

}  // namespace proximity
