// Scalar-product / distance kernels.
//
// The original implementation uses Rust Portable-SIMD for vector
// comparisons (§4.1). Here the kernels are written as 4x-unrolled
// accumulator loops that GCC/Clang auto-vectorize at -O3; this is the
// portable-C++ equivalent (verified to emit packed FMA on x86-64).
#pragma once

#include <cstddef>
#include <span>

#include "vecmath/metric.h"

namespace proximity {

/// Squared L2 distance between a and b. Sizes must match.
float L2SquaredDistance(std::span<const float> a,
                        std::span<const float> b) noexcept;

/// Inner product <a, b>.
float InnerProduct(std::span<const float> a, std::span<const float> b) noexcept;

/// Cosine distance 1 - <a,b>/(|a||b|). Returns 1 if either vector is zero.
float CosineDistance(std::span<const float> a,
                     std::span<const float> b) noexcept;

/// Squared L2 norm |a|^2.
float SquaredNorm(std::span<const float> a) noexcept;

/// Distance under the given metric, smaller = closer for all metrics
/// (inner product is negated).
float Distance(Metric metric, std::span<const float> a,
               std::span<const float> b) noexcept;

/// Computes distances from `query` to `count` contiguous row-major vectors
/// starting at `base` (each of dimension `dim`), writing into `out`
/// (length `count`). This is the hot loop of both FlatIndex and the
/// Proximity cache's linear key scan.
void BatchDistance(Metric metric, std::span<const float> query,
                   const float* base, std::size_t count, std::size_t dim,
                   float* out) noexcept;

}  // namespace proximity
