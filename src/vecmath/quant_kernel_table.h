// Internal contract between the compressed-storage dispatch layer
// (compressed_store.cpp) and the per-ISA quantized kernel translation
// units (quant_avx2.cpp, quant_avx512.cpp, quant_neon.cpp; the portable
// reference lives in compressed_store.cpp).
//
// Every slot decodes scalar-quantized codes and accumulates a distance
// against a float query in one pass — codes never round-trip through a
// decoded float buffer. Dequantization is the affine map
//   x̂[j] = bias + scale * c[j]
// with per-vector scale/bias (LVQ-style; see DESIGN.md §11).
//
// Within one table the scan loop drives these single-row kernels
// directly, so there is no batch/single parity obligation like the float
// KernelTable has; tables at different SIMD levels may differ by
// floating-point summation order only (~1e-6 relative), with the
// portable table as the reference.
//
// 4-bit codes use the half-split nibble plan of CompressedStore: byte j
// of a row's code area holds dim j in its low nibble and dim j+h (where
// h = ceil(n/2)) in its high nibble. Vector kernels can therefore run
// the low-nibble plane against q[0..h) and the high-nibble plane
// against q[h..n) without any lane shuffling.
#pragma once

#include <cstddef>
#include <cstdint>

namespace proximity::detail {

struct QuantKernelTable {
  const char* name;  // matches SimdLevelName of the owning level

  /// Squared L2 / inner product between a float query and one row of
  /// 8-bit codes (`n` dimensions, one code byte per dimension).
  float (*l2_u8)(const float* q, const std::uint8_t* codes, std::size_t n,
                 float scale, float bias);
  float (*ip_u8)(const float* q, const std::uint8_t* codes, std::size_t n,
                 float scale, float bias);

  /// Same reductions over 4-bit codes (`(n+1)/2` code bytes, half-split
  /// nibble layout). Tables without a native implementation point these
  /// at the portable functions.
  float (*l2_u4)(const float* q, const std::uint8_t* codes, std::size_t n,
                 float scale, float bias);
  float (*ip_u4)(const float* q, const std::uint8_t* codes, std::size_t n,
                 float scale, float bias);
};

/// Portable reference (scalar fmaf loops); always present.
extern const QuantKernelTable kPortableQuantTable;

/// ISA tables; each returns nullptr when its translation unit was not
/// compiled in. Fallback definitions for absent ISAs live in
/// compressed_store.cpp, mirroring the float-kernel dispatch.
const QuantKernelTable* QuantAvx2Table() noexcept;
const QuantKernelTable* QuantAvx512Table() noexcept;
const QuantKernelTable* QuantNeonTable() noexcept;

/// The table matching ActiveSimdLevel(), with fallback toward portable
/// when a level has no quantized TU (e.g. PROXIMITY_NATIVE_SIMD=OFF).
const QuantKernelTable* ActiveQuantTable() noexcept;

}  // namespace proximity::detail
