#include "vecmath/topk.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "vecmath/kernels.h"

namespace proximity {

namespace {
// Max-heap ordering: the *worst* (largest distance) neighbor at the root.
struct NeighborFarther {
  bool operator()(const Neighbor& a, const Neighbor& b) const noexcept {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  }
};
}  // namespace

TopK::TopK(std::size_t k) : k_(k) {
  if (k == 0) throw std::invalid_argument("TopK: k must be > 0");
  heap_.reserve(k);
}

float TopK::WorstDistance() const noexcept {
  if (heap_.size() < k_) return std::numeric_limits<float>::infinity();
  return heap_.front().distance;
}

void TopK::Push(VectorId id, float distance) noexcept {
  if (heap_.size() < k_) {
    heap_.push_back({id, distance});
    std::push_heap(heap_.begin(), heap_.end(), NeighborFarther{});
    return;
  }
  const Neighbor& worst = heap_.front();
  if (distance > worst.distance ||
      (distance == worst.distance && id >= worst.id)) {
    return;
  }
  std::pop_heap(heap_.begin(), heap_.end(), NeighborFarther{});
  heap_.back() = {id, distance};
  std::push_heap(heap_.begin(), heap_.end(), NeighborFarther{});
}

std::vector<Neighbor> TopK::Take() {
  std::sort(heap_.begin(), heap_.end(), NeighborCloser{});
  std::vector<Neighbor> out = std::move(heap_);
  heap_.clear();
  heap_.reserve(k_);
  return out;
}

std::vector<Neighbor> TopK::Sorted() const {
  std::vector<Neighbor> out = heap_;
  std::sort(out.begin(), out.end(), NeighborCloser{});
  return out;
}

std::vector<Neighbor> SelectTopK(Metric metric, std::span<const float> query,
                                 const float* base, std::size_t count,
                                 std::size_t dim, std::size_t k,
                                 VectorId base_id, const float* row_norms) {
  // The L2 decomposition is not bit-identical to the direct kernel, so only
  // cosine (where stored norms reproduce the single-pair math exactly)
  // takes the norm-assisted path.
  if (metric != Metric::kCosine) row_norms = nullptr;

  TopK top(k);
  constexpr std::size_t kTile = 4096;
  std::vector<float> dist(std::min(count, kTile));
  for (std::size_t lo = 0; lo < count; lo += kTile) {
    const std::size_t m = std::min(kTile, count - lo);
    if (row_norms != nullptr) {
      BatchDistanceWithNorms(metric, query, base + lo * dim, row_norms + lo,
                             m, dim, dist.data());
    } else {
      BatchDistance(metric, query, base + lo * dim, m, dim, dist.data());
    }
    for (std::size_t r = 0; r < m; ++r) {
      top.Push(base_id + static_cast<VectorId>(lo + r), dist[r]);
    }
  }
  return top.Take();
}

}  // namespace proximity
