// Similarity metrics supported by the indexes and the Proximity cache.
//
// The paper (§2.2) notes the metric is "typically L2, cosine, or
// inner-product, and is fixed before deployment", and the cache "adopts the
// same distance function as the underlying vector database" (§3.1). Every
// index therefore exposes its Metric, and ProximityCache copies it.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace proximity {

enum class Metric {
  kL2,            // squared Euclidean distance (smaller = closer)
  kInnerProduct,  // negated inner product (smaller = closer)
  kCosine,        // cosine distance 1 - cos(a, b) (smaller = closer)
};

inline std::string_view MetricName(Metric m) noexcept {
  switch (m) {
    case Metric::kL2:
      return "l2";
    case Metric::kInnerProduct:
      return "ip";
    case Metric::kCosine:
      return "cosine";
  }
  return "?";
}

inline Metric MetricFromName(std::string_view name) {
  if (name == "l2") return Metric::kL2;
  if (name == "ip" || name == "inner_product") return Metric::kInnerProduct;
  if (name == "cosine" || name == "cos") return Metric::kCosine;
  throw std::invalid_argument("unknown metric: " + std::string(name));
}

}  // namespace proximity
