// Internal contract between the dispatch layer (dispatch.cpp) and the
// per-ISA kernel translation units (kernels.cpp portable reference,
// simd_avx2.cpp, simd_avx512.cpp, simd_neon.cpp).
//
// Every implementation of a slot must be a drop-in numeric replacement:
// the batch kernels of a table are required to be bit-identical to that
// same table's single-pair kernels (callers rely on it for exact top-k
// parity between the scan paths), while tables at different SIMD levels
// may differ by summation order (bounded by ~1e-6 relative).
#pragma once

#include <cmath>
#include <cstddef>

namespace proximity::detail {

namespace internal {

inline float SqrtNonNeg(float x) noexcept {
  return x > 0.f ? std::sqrt(x) : 0.f;
}

/// Shared cosine epilogue so every table finishes with identical math:
/// 1 - dot/(|q||row|), and 1 when either norm is zero.
inline float FinishCosine(float dot, float query_norm,
                          float row_sqnorm) noexcept {
  const float denom = query_norm * SqrtNonNeg(row_sqnorm);
  if (denom <= 0.f) return 1.f;
  return 1.f - dot / denom;
}

}  // namespace internal

struct KernelTable {
  const char* name;  // matches SimdLevelName of the owning level

  /// Single-pair reductions over n floats.
  float (*l2)(const float* a, const float* b, std::size_t n);
  float (*ip)(const float* a, const float* b, std::size_t n);
  float (*sqnorm)(const float* a, std::size_t n);

  /// Fused batch kernels: one query against `count` contiguous row-major
  /// rows of dimension `dim`, results in `out`. Raw values — metric
  /// semantics (inner-product negation) are applied by the dispatch layer.
  void (*batch_l2)(const float* q, const float* base, std::size_t count,
                   std::size_t dim, float* out);
  void (*batch_ip)(const float* q, const float* base, std::size_t count,
                   std::size_t dim, float* out);
  /// Cosine distance 1 - <q,row>/(|q||row|); 1 when either norm is zero.
  void (*batch_cos)(const float* q, const float* base, std::size_t count,
                    std::size_t dim, float* out);
};

/// Portable reference (auto-vectorized unrolled loops); always present.
extern const KernelTable kPortableTable;

/// ISA tables; each returns nullptr when its translation unit was not
/// compiled in (CMake option PROXIMITY_NATIVE_SIMD / wrong architecture).
/// Fallback definitions for absent ISAs live in dispatch.cpp.
const KernelTable* Avx2Table() noexcept;
const KernelTable* Avx512Table() noexcept;
const KernelTable* NeonTable() noexcept;

}  // namespace proximity::detail
