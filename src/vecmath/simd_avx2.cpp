// AVX2+FMA kernels. Compiled with -mavx2 -mfma (see vecmath/CMakeLists.txt);
// only reached when CPUID reports both features at runtime.
//
// Shared chunk pattern for every reduction in this file: 16 floats per
// iteration into two 8-lane accumulators, one 8-wide mop-up into acc0, and
// a scalar fmaf tail. The fused batch kernels replicate this per-row order
// exactly, which makes batch results bit-identical to the single-pair
// kernels (the KernelTable contract).
#include <immintrin.h>

#include <cmath>
#include <cstddef>

#include "vecmath/kernel_table.h"

namespace proximity::detail {

namespace {

inline float Hsum(__m256 v) noexcept {
  __m128 s = _mm_add_ps(_mm256_castps256_ps128(v),
                        _mm256_extractf128_ps(v, 1));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_movehdup_ps(s));
  return _mm_cvtss_f32(s);
}

inline void PrefetchRow(const float* p) noexcept {
  _mm_prefetch(reinterpret_cast<const char*>(p), _MM_HINT_T0);
  _mm_prefetch(reinterpret_cast<const char*>(p) + 64, _MM_HINT_T0);
}

// In-loop prefetch distance for the fused cores, in floats (1 KiB). Each
// main-loop iteration consumes exactly one cacheline per row, so a single
// prefetch per row covers every line. Rows of a batch are contiguous, so
// running past a row's end prefetches the next group's data; prefetch
// hints never fault, so overshooting the block at the very end is harmless.
constexpr std::size_t kPfAhead = 256;

// ------------------------------------------------------- single-pair ----

float L2One(const float* a, const float* b, std::size_t n) {
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 d0 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    const __m256 d1 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8));
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  if (i + 8 <= n) {
    const __m256 d =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
    i += 8;
  }
  float tail = 0.f;
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    tail = std::fmaf(d, d, tail);
  }
  return Hsum(_mm256_add_ps(acc0, acc1)) + tail;
}

float IpOne(const float* a, const float* b, std::size_t n) {
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  if (i + 8 <= n) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    i += 8;
  }
  float tail = 0.f;
  for (; i < n; ++i) tail = std::fmaf(a[i], b[i], tail);
  return Hsum(_mm256_add_ps(acc0, acc1)) + tail;
}

float SqNormOne(const float* a, std::size_t n) {
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 v0 = _mm256_loadu_ps(a + i);
    acc0 = _mm256_fmadd_ps(v0, v0, acc0);
    const __m256 v1 = _mm256_loadu_ps(a + i + 8);
    acc1 = _mm256_fmadd_ps(v1, v1, acc1);
  }
  if (i + 8 <= n) {
    const __m256 v = _mm256_loadu_ps(a + i);
    acc0 = _mm256_fmadd_ps(v, v, acc0);
    i += 8;
  }
  float tail = 0.f;
  for (; i < n; ++i) tail = std::fmaf(a[i], a[i], tail);
  return Hsum(_mm256_add_ps(acc0, acc1)) + tail;
}

// ------------------------------------------------- fused batch cores ----
// Four rows in flight sharing the query loads; per-row accumulator order
// matches the single-pair kernels above exactly.

void L2Rows4(const float* q, const float* r0, const float* r1,
             const float* r2, const float* r3, std::size_t n, float* out) {
  __m256 a00 = _mm256_setzero_ps(), a01 = _mm256_setzero_ps();
  __m256 a10 = _mm256_setzero_ps(), a11 = _mm256_setzero_ps();
  __m256 a20 = _mm256_setzero_ps(), a21 = _mm256_setzero_ps();
  __m256 a30 = _mm256_setzero_ps(), a31 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm_prefetch(reinterpret_cast<const char*>(r0 + i + kPfAhead),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r1 + i + kPfAhead),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r2 + i + kPfAhead),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r3 + i + kPfAhead),
                 _MM_HINT_T0);
    const __m256 q0 = _mm256_loadu_ps(q + i);
    const __m256 q1 = _mm256_loadu_ps(q + i + 8);
    __m256 d;
    d = _mm256_sub_ps(q0, _mm256_loadu_ps(r0 + i));
    a00 = _mm256_fmadd_ps(d, d, a00);
    d = _mm256_sub_ps(q1, _mm256_loadu_ps(r0 + i + 8));
    a01 = _mm256_fmadd_ps(d, d, a01);
    d = _mm256_sub_ps(q0, _mm256_loadu_ps(r1 + i));
    a10 = _mm256_fmadd_ps(d, d, a10);
    d = _mm256_sub_ps(q1, _mm256_loadu_ps(r1 + i + 8));
    a11 = _mm256_fmadd_ps(d, d, a11);
    d = _mm256_sub_ps(q0, _mm256_loadu_ps(r2 + i));
    a20 = _mm256_fmadd_ps(d, d, a20);
    d = _mm256_sub_ps(q1, _mm256_loadu_ps(r2 + i + 8));
    a21 = _mm256_fmadd_ps(d, d, a21);
    d = _mm256_sub_ps(q0, _mm256_loadu_ps(r3 + i));
    a30 = _mm256_fmadd_ps(d, d, a30);
    d = _mm256_sub_ps(q1, _mm256_loadu_ps(r3 + i + 8));
    a31 = _mm256_fmadd_ps(d, d, a31);
  }
  if (i + 8 <= n) {
    const __m256 q0 = _mm256_loadu_ps(q + i);
    __m256 d;
    d = _mm256_sub_ps(q0, _mm256_loadu_ps(r0 + i));
    a00 = _mm256_fmadd_ps(d, d, a00);
    d = _mm256_sub_ps(q0, _mm256_loadu_ps(r1 + i));
    a10 = _mm256_fmadd_ps(d, d, a10);
    d = _mm256_sub_ps(q0, _mm256_loadu_ps(r2 + i));
    a20 = _mm256_fmadd_ps(d, d, a20);
    d = _mm256_sub_ps(q0, _mm256_loadu_ps(r3 + i));
    a30 = _mm256_fmadd_ps(d, d, a30);
    i += 8;
  }
  float t0 = 0.f, t1 = 0.f, t2 = 0.f, t3 = 0.f;
  for (; i < n; ++i) {
    const float qa = q[i];
    float d = qa - r0[i];
    t0 = std::fmaf(d, d, t0);
    d = qa - r1[i];
    t1 = std::fmaf(d, d, t1);
    d = qa - r2[i];
    t2 = std::fmaf(d, d, t2);
    d = qa - r3[i];
    t3 = std::fmaf(d, d, t3);
  }
  out[0] = Hsum(_mm256_add_ps(a00, a01)) + t0;
  out[1] = Hsum(_mm256_add_ps(a10, a11)) + t1;
  out[2] = Hsum(_mm256_add_ps(a20, a21)) + t2;
  out[3] = Hsum(_mm256_add_ps(a30, a31)) + t3;
}

void IpRows4(const float* q, const float* r0, const float* r1,
             const float* r2, const float* r3, std::size_t n, float* out) {
  __m256 a00 = _mm256_setzero_ps(), a01 = _mm256_setzero_ps();
  __m256 a10 = _mm256_setzero_ps(), a11 = _mm256_setzero_ps();
  __m256 a20 = _mm256_setzero_ps(), a21 = _mm256_setzero_ps();
  __m256 a30 = _mm256_setzero_ps(), a31 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm_prefetch(reinterpret_cast<const char*>(r0 + i + kPfAhead),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r1 + i + kPfAhead),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r2 + i + kPfAhead),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r3 + i + kPfAhead),
                 _MM_HINT_T0);
    const __m256 q0 = _mm256_loadu_ps(q + i);
    const __m256 q1 = _mm256_loadu_ps(q + i + 8);
    a00 = _mm256_fmadd_ps(q0, _mm256_loadu_ps(r0 + i), a00);
    a01 = _mm256_fmadd_ps(q1, _mm256_loadu_ps(r0 + i + 8), a01);
    a10 = _mm256_fmadd_ps(q0, _mm256_loadu_ps(r1 + i), a10);
    a11 = _mm256_fmadd_ps(q1, _mm256_loadu_ps(r1 + i + 8), a11);
    a20 = _mm256_fmadd_ps(q0, _mm256_loadu_ps(r2 + i), a20);
    a21 = _mm256_fmadd_ps(q1, _mm256_loadu_ps(r2 + i + 8), a21);
    a30 = _mm256_fmadd_ps(q0, _mm256_loadu_ps(r3 + i), a30);
    a31 = _mm256_fmadd_ps(q1, _mm256_loadu_ps(r3 + i + 8), a31);
  }
  if (i + 8 <= n) {
    const __m256 q0 = _mm256_loadu_ps(q + i);
    a00 = _mm256_fmadd_ps(q0, _mm256_loadu_ps(r0 + i), a00);
    a10 = _mm256_fmadd_ps(q0, _mm256_loadu_ps(r1 + i), a10);
    a20 = _mm256_fmadd_ps(q0, _mm256_loadu_ps(r2 + i), a20);
    a30 = _mm256_fmadd_ps(q0, _mm256_loadu_ps(r3 + i), a30);
    i += 8;
  }
  float t0 = 0.f, t1 = 0.f, t2 = 0.f, t3 = 0.f;
  for (; i < n; ++i) {
    const float qa = q[i];
    t0 = std::fmaf(qa, r0[i], t0);
    t1 = std::fmaf(qa, r1[i], t1);
    t2 = std::fmaf(qa, r2[i], t2);
    t3 = std::fmaf(qa, r3[i], t3);
  }
  out[0] = Hsum(_mm256_add_ps(a00, a01)) + t0;
  out[1] = Hsum(_mm256_add_ps(a10, a11)) + t1;
  out[2] = Hsum(_mm256_add_ps(a20, a21)) + t2;
  out[3] = Hsum(_mm256_add_ps(a30, a31)) + t3;
}

// Two rows in flight, accumulating dot and row-norm together (one pass per
// row). dot order matches IpOne; norm order matches SqNormOne.
void CosRows2(const float* q, const float* r0, const float* r1,
              std::size_t n, float* dot_out, float* norm_out) {
  __m256 d00 = _mm256_setzero_ps(), d01 = _mm256_setzero_ps();
  __m256 d10 = _mm256_setzero_ps(), d11 = _mm256_setzero_ps();
  __m256 n00 = _mm256_setzero_ps(), n01 = _mm256_setzero_ps();
  __m256 n10 = _mm256_setzero_ps(), n11 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm_prefetch(reinterpret_cast<const char*>(r0 + i + kPfAhead),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(r1 + i + kPfAhead),
                 _MM_HINT_T0);
    const __m256 q0 = _mm256_loadu_ps(q + i);
    const __m256 q1 = _mm256_loadu_ps(q + i + 8);
    const __m256 r0c0 = _mm256_loadu_ps(r0 + i);
    d00 = _mm256_fmadd_ps(q0, r0c0, d00);
    n00 = _mm256_fmadd_ps(r0c0, r0c0, n00);
    const __m256 r0c1 = _mm256_loadu_ps(r0 + i + 8);
    d01 = _mm256_fmadd_ps(q1, r0c1, d01);
    n01 = _mm256_fmadd_ps(r0c1, r0c1, n01);
    const __m256 r1c0 = _mm256_loadu_ps(r1 + i);
    d10 = _mm256_fmadd_ps(q0, r1c0, d10);
    n10 = _mm256_fmadd_ps(r1c0, r1c0, n10);
    const __m256 r1c1 = _mm256_loadu_ps(r1 + i + 8);
    d11 = _mm256_fmadd_ps(q1, r1c1, d11);
    n11 = _mm256_fmadd_ps(r1c1, r1c1, n11);
  }
  if (i + 8 <= n) {
    const __m256 q0 = _mm256_loadu_ps(q + i);
    const __m256 r0c = _mm256_loadu_ps(r0 + i);
    d00 = _mm256_fmadd_ps(q0, r0c, d00);
    n00 = _mm256_fmadd_ps(r0c, r0c, n00);
    const __m256 r1c = _mm256_loadu_ps(r1 + i);
    d10 = _mm256_fmadd_ps(q0, r1c, d10);
    n10 = _mm256_fmadd_ps(r1c, r1c, n10);
    i += 8;
  }
  float td0 = 0.f, td1 = 0.f, tn0 = 0.f, tn1 = 0.f;
  for (; i < n; ++i) {
    const float qa = q[i];
    const float x0 = r0[i];
    td0 = std::fmaf(qa, x0, td0);
    tn0 = std::fmaf(x0, x0, tn0);
    const float x1 = r1[i];
    td1 = std::fmaf(qa, x1, td1);
    tn1 = std::fmaf(x1, x1, tn1);
  }
  dot_out[0] = Hsum(_mm256_add_ps(d00, d01)) + td0;
  dot_out[1] = Hsum(_mm256_add_ps(d10, d11)) + td1;
  norm_out[0] = Hsum(_mm256_add_ps(n00, n01)) + tn0;
  norm_out[1] = Hsum(_mm256_add_ps(n10, n11)) + tn1;
}

// ----------------------------------------------------- batch drivers ----

void BatchL2(const float* q, const float* base, std::size_t count,
             std::size_t dim, float* out) {
  std::size_t r = 0;
  for (; r + 4 <= count; r += 4) {
    if (r + 8 <= count) PrefetchRow(base + (r + 4) * dim);
    L2Rows4(q, base + r * dim, base + (r + 1) * dim, base + (r + 2) * dim,
            base + (r + 3) * dim, dim, out + r);
  }
  for (; r < count; ++r) out[r] = L2One(q, base + r * dim, dim);
}

void BatchIp(const float* q, const float* base, std::size_t count,
             std::size_t dim, float* out) {
  std::size_t r = 0;
  for (; r + 4 <= count; r += 4) {
    if (r + 8 <= count) PrefetchRow(base + (r + 4) * dim);
    IpRows4(q, base + r * dim, base + (r + 1) * dim, base + (r + 2) * dim,
            base + (r + 3) * dim, dim, out + r);
  }
  for (; r < count; ++r) out[r] = IpOne(q, base + r * dim, dim);
}

void BatchCos(const float* q, const float* base, std::size_t count,
              std::size_t dim, float* out) {
  const float qnorm = internal::SqrtNonNeg(SqNormOne(q, dim));
  std::size_t r = 0;
  float dots[2], norms[2];
  for (; r + 2 <= count; r += 2) {
    if (r + 4 <= count) PrefetchRow(base + (r + 2) * dim);
    CosRows2(q, base + r * dim, base + (r + 1) * dim, dim, dots, norms);
    out[r] = internal::FinishCosine(dots[0], qnorm, norms[0]);
    out[r + 1] = internal::FinishCosine(dots[1], qnorm, norms[1]);
  }
  for (; r < count; ++r) {
    const float* row = base + r * dim;
    out[r] = internal::FinishCosine(IpOne(q, row, dim), qnorm,
                                    SqNormOne(row, dim));
  }
}

}  // namespace

const KernelTable* Avx2Table() noexcept {
  static const KernelTable table = {
      "avx2", L2One, IpOne, SqNormOne, BatchL2, BatchIp, BatchCos,
  };
  return &table;
}

}  // namespace proximity::detail
