// AVX2+FMA quantized-scan kernels. Compiled with -mavx2 -mfma (see
// vecmath/CMakeLists.txt); only reached when CPUID reports both.
//
// Decode stays fused in the accumulation: 16 codes per iteration are
// widened u8 -> i32 -> f32, dequantized with one fmadd against the
// per-vector scale/bias, and accumulated into two 8-lane registers —
// the codes never hit a decoded buffer. 4-bit rows run the half-split
// nibble planes (quant_kernel_table.h) so each plane keeps contiguous
// query loads.
#include <immintrin.h>

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "vecmath/quant_kernel_table.h"

namespace proximity::detail {

namespace {

inline float Hsum(__m256 v) noexcept {
  __m128 s = _mm_add_ps(_mm256_castps256_ps128(v),
                        _mm256_extractf128_ps(v, 1));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_movehdup_ps(s));
  return _mm_cvtss_f32(s);
}

/// Dequantizes 8 widened codes: bias + scale * c.
inline __m256 Dequant8(__m256i c, __m256 vscale, __m256 vbias) noexcept {
  return _mm256_fmadd_ps(vscale, _mm256_cvtepi32_ps(c), vbias);
}

// --------------------------------------------------------- 8-bit rows ----

float L2U8(const float* q, const std::uint8_t* codes, std::size_t n,
           float scale, float bias) {
  const __m256 vscale = _mm256_set1_ps(scale);
  const __m256 vbias = _mm256_set1_ps(bias);
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + i));
    const __m256 x0 = Dequant8(_mm256_cvtepu8_epi32(b), vscale, vbias);
    const __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(q + i), x0);
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    const __m256 x1 =
        Dequant8(_mm256_cvtepu8_epi32(_mm_srli_si128(b, 8)), vscale, vbias);
    const __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(q + i + 8), x1);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  if (i + 8 <= n) {
    const __m128i b =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(codes + i));
    const __m256 x = Dequant8(_mm256_cvtepu8_epi32(b), vscale, vbias);
    const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(q + i), x);
    acc0 = _mm256_fmadd_ps(d, d, acc0);
    i += 8;
  }
  float tail = 0.f;
  for (; i < n; ++i) {
    const float d = q[i] - std::fmaf(scale, static_cast<float>(codes[i]), bias);
    tail = std::fmaf(d, d, tail);
  }
  return Hsum(_mm256_add_ps(acc0, acc1)) + tail;
}

float IpU8(const float* q, const std::uint8_t* codes, std::size_t n,
           float scale, float bias) {
  const __m256 vscale = _mm256_set1_ps(scale);
  const __m256 vbias = _mm256_set1_ps(bias);
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + i));
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(q + i),
                           Dequant8(_mm256_cvtepu8_epi32(b), vscale, vbias),
                           acc0);
    acc1 = _mm256_fmadd_ps(
        _mm256_loadu_ps(q + i + 8),
        Dequant8(_mm256_cvtepu8_epi32(_mm_srli_si128(b, 8)), vscale, vbias),
        acc1);
  }
  if (i + 8 <= n) {
    const __m128i b =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(codes + i));
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(q + i),
                           Dequant8(_mm256_cvtepu8_epi32(b), vscale, vbias),
                           acc0);
    i += 8;
  }
  float tail = 0.f;
  for (; i < n; ++i) {
    tail = std::fmaf(q[i], std::fmaf(scale, static_cast<float>(codes[i]), bias),
                     tail);
  }
  return Hsum(_mm256_add_ps(acc0, acc1)) + tail;
}

// --------------------------------------------------------- 4-bit rows ----
// One plane: `len` dims whose codes are the low (kHigh=false) or high
// (kHigh=true) nibbles of codes[0..len); `q` is already offset to the
// plane's first dimension.

template <bool kHigh, bool kL2>
float Plane(const float* q, const std::uint8_t* codes, std::size_t len,
            __m256 vscale, __m256 vbias, float scale, float bias) {
  const __m128i mask = _mm_set1_epi8(0x0F);
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  std::size_t j = 0;
  for (; j + 16 <= len; j += 16) {
    __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + j));
    if constexpr (kHigh) {
      b = _mm_and_si128(_mm_srli_epi16(b, 4), mask);
    } else {
      b = _mm_and_si128(b, mask);
    }
    const __m256 x0 = Dequant8(_mm256_cvtepu8_epi32(b), vscale, vbias);
    const __m256 x1 =
        Dequant8(_mm256_cvtepu8_epi32(_mm_srli_si128(b, 8)), vscale, vbias);
    if constexpr (kL2) {
      const __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(q + j), x0);
      acc0 = _mm256_fmadd_ps(d0, d0, acc0);
      const __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(q + j + 8), x1);
      acc1 = _mm256_fmadd_ps(d1, d1, acc1);
    } else {
      acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(q + j), x0, acc0);
      acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(q + j + 8), x1, acc1);
    }
  }
  float tail = 0.f;
  for (; j < len; ++j) {
    const float c = static_cast<float>(kHigh ? (codes[j] >> 4)
                                             : (codes[j] & 0x0F));
    const float x = std::fmaf(scale, c, bias);
    if constexpr (kL2) {
      const float d = q[j] - x;
      tail = std::fmaf(d, d, tail);
    } else {
      tail = std::fmaf(q[j], x, tail);
    }
  }
  return Hsum(_mm256_add_ps(acc0, acc1)) + tail;
}

float L2U4(const float* q, const std::uint8_t* codes, std::size_t n,
           float scale, float bias) {
  const std::size_t h = (n + 1) / 2;
  const __m256 vscale = _mm256_set1_ps(scale);
  const __m256 vbias = _mm256_set1_ps(bias);
  return Plane<false, true>(q, codes, h, vscale, vbias, scale, bias) +
         Plane<true, true>(q + h, codes, n - h, vscale, vbias, scale, bias);
}

float IpU4(const float* q, const std::uint8_t* codes, std::size_t n,
           float scale, float bias) {
  const std::size_t h = (n + 1) / 2;
  const __m256 vscale = _mm256_set1_ps(scale);
  const __m256 vbias = _mm256_set1_ps(bias);
  return Plane<false, false>(q, codes, h, vscale, vbias, scale, bias) +
         Plane<true, false>(q + h, codes, n - h, vscale, vbias, scale, bias);
}

}  // namespace

const QuantKernelTable* QuantAvx2Table() noexcept {
  static const QuantKernelTable table = {
      "avx2", L2U8, IpU8, L2U4, IpU4,
  };
  return &table;
}

}  // namespace proximity::detail
