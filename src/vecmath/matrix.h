// Row-major float matrix: the storage type for corpora, centroids, and
// cached query keys.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace proximity {

class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t dim)
      : dim_(dim), data_(rows * dim, 0.f) {
    if (dim == 0) throw std::invalid_argument("Matrix: dim must be > 0");
  }

  /// Wraps existing data; data.size() must be a multiple of dim.
  Matrix(std::vector<float> data, std::size_t dim)
      : dim_(dim), data_(std::move(data)) {
    if (dim == 0) throw std::invalid_argument("Matrix: dim must be > 0");
    if (data_.size() % dim != 0) {
      throw std::invalid_argument("Matrix: data size not a multiple of dim");
    }
  }

  std::size_t rows() const noexcept { return dim_ ? data_.size() / dim_ : 0; }
  std::size_t dim() const noexcept { return dim_; }
  bool empty() const noexcept { return data_.empty(); }

  std::span<const float> Row(std::size_t r) const noexcept {
    assert(r < rows());
    return {data_.data() + r * dim_, dim_};
  }

  std::span<float> MutableRow(std::size_t r) noexcept {
    assert(r < rows());
    return {data_.data() + r * dim_, dim_};
  }

  void AppendRow(std::span<const float> row) {
    if (row.size() != dim_) {
      throw std::invalid_argument("Matrix::AppendRow: dimension mismatch");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }

  void Reserve(std::size_t rows) { data_.reserve(rows * dim_); }

  const float* data() const noexcept { return data_.data(); }
  float* data() noexcept { return data_.data(); }

 private:
  std::size_t dim_ = 0;
  std::vector<float> data_;
};

}  // namespace proximity
