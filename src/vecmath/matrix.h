// Row-major float matrix: the storage type for corpora, centroids, and
// cached query keys. Optionally maintains per-row squared L2 norms for the
// norm-assisted batch kernels (BatchDistanceWithNorms).
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "vecmath/kernels.h"

namespace proximity {

class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t dim)
      : dim_(dim), data_(rows * dim, 0.f) {
    if (dim == 0) throw std::invalid_argument("Matrix: dim must be > 0");
  }

  /// Wraps existing data; data.size() must be a multiple of dim.
  Matrix(std::vector<float> data, std::size_t dim)
      : dim_(dim), data_(std::move(data)) {
    if (dim == 0) throw std::invalid_argument("Matrix: dim must be > 0");
    if (data_.size() % dim != 0) {
      throw std::invalid_argument("Matrix: data size not a multiple of dim");
    }
  }

  std::size_t rows() const noexcept { return dim_ ? data_.size() / dim_ : 0; }
  std::size_t dim() const noexcept { return dim_; }
  bool empty() const noexcept { return data_.empty(); }

  std::span<const float> Row(std::size_t r) const noexcept {
    assert(r < rows());
    return {data_.data() + r * dim_, dim_};
  }

  /// Mutable row access. Bypasses the norm cache, which is therefore
  /// dropped; prefer SetRow for whole-row overwrites.
  std::span<float> MutableRow(std::size_t r) noexcept {
    assert(r < rows());
    DropNormCache();
    return {data_.data() + r * dim_, dim_};
  }

  void AppendRow(std::span<const float> row) {
    if (row.size() != dim_) {
      throw std::invalid_argument("Matrix::AppendRow: dimension mismatch");
    }
    data_.insert(data_.end(), row.begin(), row.end());
    if (norm_cache_) norms_.push_back(SquaredNorm(row));
  }

  /// Overwrites row r in place, keeping the norm cache consistent.
  void SetRow(std::size_t r, std::span<const float> row) {
    if (row.size() != dim_) {
      throw std::invalid_argument("Matrix::SetRow: dimension mismatch");
    }
    if (r >= rows()) throw std::out_of_range("Matrix::SetRow: bad row");
    std::copy(row.begin(), row.end(), data_.begin() + r * dim_);
    if (norm_cache_) norms_[r] = SquaredNorm(row);
  }

  /// Starts maintaining per-row squared L2 norms: computes them for every
  /// current row and keeps them fresh across AppendRow/SetRow. MutableRow
  /// and mutable data() drop the cache (call EnableNormCache again after
  /// bulk writes). Norms are computed with the active SIMD level's sqnorm
  /// kernel, which BatchDistanceWithNorms relies on for exact cosine
  /// parity with the single-pair kernels.
  void EnableNormCache() {
    norms_.resize(rows());
    for (std::size_t r = 0; r < rows(); ++r) norms_[r] = SquaredNorm(Row(r));
    norm_cache_ = true;
  }

  /// Per-row squared norms, or nullptr when the cache is not maintained.
  const float* RowNorms() const noexcept {
    return norm_cache_ ? norms_.data() : nullptr;
  }

  bool norm_cache_enabled() const noexcept { return norm_cache_; }

  /// Drops all rows past the first n, keeping the norm cache consistent.
  /// Used by the cache's staleness compaction (swap-with-last removal).
  void TruncateRows(std::size_t n) {
    if (n > rows()) throw std::out_of_range("Matrix::TruncateRows: bad size");
    data_.resize(n * dim_);
    if (norm_cache_) norms_.resize(n);
  }

  void Reserve(std::size_t rows) {
    data_.reserve(rows * dim_);
    if (norm_cache_) norms_.reserve(rows);
  }

  const float* data() const noexcept { return data_.data(); }

  /// Mutable raw access; drops the norm cache (see MutableRow).
  float* data() noexcept {
    DropNormCache();
    return data_.data();
  }

 private:
  void DropNormCache() noexcept {
    // No-op (and in particular no write) when the cache is already off:
    // parallel writers may take MutableRow on disjoint rows of a
    // cache-less matrix, and an unconditional clear() would race.
    if (!norm_cache_) return;
    norm_cache_ = false;
    norms_.clear();
  }

  std::size_t dim_ = 0;
  std::vector<float> data_;
  // Squared L2 norm per row, maintained only while norm_cache_ is set.
  bool norm_cache_ = false;
  std::vector<float> norms_;
};

}  // namespace proximity
