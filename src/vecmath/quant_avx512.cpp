// AVX-512F quantized-scan kernels: 32 codes per iteration into two
// 16-lane accumulators, same fused dequantize-and-accumulate shape as
// quant_avx2.cpp. Compiled with -mavx512f; only reached when CPUID
// reports AVX-512F.
#include <immintrin.h>

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "vecmath/quant_kernel_table.h"

namespace proximity::detail {

namespace {

/// Dequantizes 16 widened codes: bias + scale * c.
inline __m512 Dequant16(__m512i c, __m512 vscale, __m512 vbias) noexcept {
  return _mm512_fmadd_ps(vscale, _mm512_cvtepi32_ps(c), vbias);
}

inline __m512i Widen16(const std::uint8_t* p) noexcept {
  return _mm512_cvtepu8_epi32(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
}

// --------------------------------------------------------- 8-bit rows ----

float L2U8(const float* q, const std::uint8_t* codes, std::size_t n,
           float scale, float bias) {
  const __m512 vscale = _mm512_set1_ps(scale);
  const __m512 vbias = _mm512_set1_ps(bias);
  // Four independent chains: the accumulating FMA is the only serial
  // dependency, so two chains leave the FMA units idle most cycles.
  __m512 acc0 = _mm512_setzero_ps(), acc1 = _mm512_setzero_ps();
  __m512 acc2 = _mm512_setzero_ps(), acc3 = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512 d0 = _mm512_sub_ps(_mm512_loadu_ps(q + i),
                                    Dequant16(Widen16(codes + i), vscale,
                                              vbias));
    acc0 = _mm512_fmadd_ps(d0, d0, acc0);
    const __m512 d1 = _mm512_sub_ps(_mm512_loadu_ps(q + i + 16),
                                    Dequant16(Widen16(codes + i + 16), vscale,
                                              vbias));
    acc1 = _mm512_fmadd_ps(d1, d1, acc1);
    const __m512 d2 = _mm512_sub_ps(_mm512_loadu_ps(q + i + 32),
                                    Dequant16(Widen16(codes + i + 32), vscale,
                                              vbias));
    acc2 = _mm512_fmadd_ps(d2, d2, acc2);
    const __m512 d3 = _mm512_sub_ps(_mm512_loadu_ps(q + i + 48),
                                    Dequant16(Widen16(codes + i + 48), vscale,
                                              vbias));
    acc3 = _mm512_fmadd_ps(d3, d3, acc3);
  }
  acc0 = _mm512_add_ps(_mm512_add_ps(acc0, acc2), acc3);
  for (; i + 16 <= n; i += 16) {
    const __m512 d = _mm512_sub_ps(_mm512_loadu_ps(q + i),
                                   Dequant16(Widen16(codes + i), vscale,
                                             vbias));
    acc0 = _mm512_fmadd_ps(d, d, acc0);
  }
  float tail = 0.f;
  for (; i < n; ++i) {
    const float d = q[i] - std::fmaf(scale, static_cast<float>(codes[i]), bias);
    tail = std::fmaf(d, d, tail);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1)) + tail;
}

float IpU8(const float* q, const std::uint8_t* codes, std::size_t n,
           float scale, float bias) {
  const __m512 vscale = _mm512_set1_ps(scale);
  const __m512 vbias = _mm512_set1_ps(bias);
  // Four chains, as in L2U8.
  __m512 acc0 = _mm512_setzero_ps(), acc1 = _mm512_setzero_ps();
  __m512 acc2 = _mm512_setzero_ps(), acc3 = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(q + i),
                           Dequant16(Widen16(codes + i), vscale, vbias), acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(q + i + 16),
                           Dequant16(Widen16(codes + i + 16), vscale, vbias),
                           acc1);
    acc2 = _mm512_fmadd_ps(_mm512_loadu_ps(q + i + 32),
                           Dequant16(Widen16(codes + i + 32), vscale, vbias),
                           acc2);
    acc3 = _mm512_fmadd_ps(_mm512_loadu_ps(q + i + 48),
                           Dequant16(Widen16(codes + i + 48), vscale, vbias),
                           acc3);
  }
  acc0 = _mm512_add_ps(_mm512_add_ps(acc0, acc2), acc3);
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(q + i),
                           Dequant16(Widen16(codes + i), vscale, vbias), acc0);
  }
  float tail = 0.f;
  for (; i < n; ++i) {
    tail = std::fmaf(q[i], std::fmaf(scale, static_cast<float>(codes[i]), bias),
                     tail);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1)) + tail;
}

// --------------------------------------------------------- 4-bit rows ----
// Half-split nibble planes (quant_kernel_table.h), 16 codes per
// iteration from a 128-bit nibble extraction.

template <bool kHigh, bool kL2>
float Plane(const float* q, const std::uint8_t* codes, std::size_t len,
            __m512 vscale, __m512 vbias, float scale, float bias) {
  const __m128i mask = _mm_set1_epi8(0x0F);
  __m512 acc = _mm512_setzero_ps();
  std::size_t j = 0;
  for (; j + 16 <= len; j += 16) {
    __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + j));
    if constexpr (kHigh) {
      b = _mm_and_si128(_mm_srli_epi16(b, 4), mask);
    } else {
      b = _mm_and_si128(b, mask);
    }
    const __m512 x = Dequant16(_mm512_cvtepu8_epi32(b), vscale, vbias);
    if constexpr (kL2) {
      const __m512 d = _mm512_sub_ps(_mm512_loadu_ps(q + j), x);
      acc = _mm512_fmadd_ps(d, d, acc);
    } else {
      acc = _mm512_fmadd_ps(_mm512_loadu_ps(q + j), x, acc);
    }
  }
  float tail = 0.f;
  for (; j < len; ++j) {
    const float c = static_cast<float>(kHigh ? (codes[j] >> 4)
                                             : (codes[j] & 0x0F));
    const float x = std::fmaf(scale, c, bias);
    if constexpr (kL2) {
      const float d = q[j] - x;
      tail = std::fmaf(d, d, tail);
    } else {
      tail = std::fmaf(q[j], x, tail);
    }
  }
  return _mm512_reduce_add_ps(acc) + tail;
}

float L2U4(const float* q, const std::uint8_t* codes, std::size_t n,
           float scale, float bias) {
  const std::size_t h = (n + 1) / 2;
  const __m512 vscale = _mm512_set1_ps(scale);
  const __m512 vbias = _mm512_set1_ps(bias);
  return Plane<false, true>(q, codes, h, vscale, vbias, scale, bias) +
         Plane<true, true>(q + h, codes, n - h, vscale, vbias, scale, bias);
}

float IpU4(const float* q, const std::uint8_t* codes, std::size_t n,
           float scale, float bias) {
  const std::size_t h = (n + 1) / 2;
  const __m512 vscale = _mm512_set1_ps(scale);
  const __m512 vbias = _mm512_set1_ps(bias);
  return Plane<false, false>(q, codes, h, vscale, vbias, scale, bias) +
         Plane<true, false>(q + h, codes, n - h, vscale, vbias, scale, bias);
}

}  // namespace

const QuantKernelTable* QuantAvx512Table() noexcept {
  static const QuantKernelTable table = {
      "avx512", L2U8, IpU8, L2U4, IpU4,
  };
  return &table;
}

}  // namespace proximity::detail
