// AArch64 Advanced-SIMD (NEON) quantized-scan kernels: 8 codes per
// iteration widened u8 -> u16 -> u32 -> f32 into two 4-lane
// accumulators, same fused dequantize-and-accumulate shape as the x86
// quant kernels. No extra compile flags needed on aarch64.
#include <arm_neon.h>

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "vecmath/quant_kernel_table.h"

namespace proximity::detail {

namespace {

/// Widens 8 code bytes and dequantizes both 4-lane halves.
struct Dequant8x {
  float32x4_t lo;
  float32x4_t hi;
};

inline Dequant8x Dequant8(uint8x8_t codes, float32x4_t vscale,
                          float32x4_t vbias) noexcept {
  const uint16x8_t w = vmovl_u8(codes);
  const float32x4_t c0 = vcvtq_f32_u32(vmovl_u16(vget_low_u16(w)));
  const float32x4_t c1 = vcvtq_f32_u32(vmovl_u16(vget_high_u16(w)));
  return {vfmaq_f32(vbias, vscale, c0), vfmaq_f32(vbias, vscale, c1)};
}

// --------------------------------------------------------- 8-bit rows ----

float L2U8(const float* q, const std::uint8_t* codes, std::size_t n,
           float scale, float bias) {
  const float32x4_t vscale = vdupq_n_f32(scale);
  const float32x4_t vbias = vdupq_n_f32(bias);
  float32x4_t acc0 = vdupq_n_f32(0.f), acc1 = vdupq_n_f32(0.f);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const Dequant8x x = Dequant8(vld1_u8(codes + i), vscale, vbias);
    const float32x4_t d0 = vsubq_f32(vld1q_f32(q + i), x.lo);
    acc0 = vfmaq_f32(acc0, d0, d0);
    const float32x4_t d1 = vsubq_f32(vld1q_f32(q + i + 4), x.hi);
    acc1 = vfmaq_f32(acc1, d1, d1);
  }
  float tail = 0.f;
  for (; i < n; ++i) {
    const float d = q[i] - std::fmaf(scale, static_cast<float>(codes[i]), bias);
    tail = std::fmaf(d, d, tail);
  }
  return vaddvq_f32(vaddq_f32(acc0, acc1)) + tail;
}

float IpU8(const float* q, const std::uint8_t* codes, std::size_t n,
           float scale, float bias) {
  const float32x4_t vscale = vdupq_n_f32(scale);
  const float32x4_t vbias = vdupq_n_f32(bias);
  float32x4_t acc0 = vdupq_n_f32(0.f), acc1 = vdupq_n_f32(0.f);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const Dequant8x x = Dequant8(vld1_u8(codes + i), vscale, vbias);
    acc0 = vfmaq_f32(acc0, vld1q_f32(q + i), x.lo);
    acc1 = vfmaq_f32(acc1, vld1q_f32(q + i + 4), x.hi);
  }
  float tail = 0.f;
  for (; i < n; ++i) {
    tail = std::fmaf(q[i], std::fmaf(scale, static_cast<float>(codes[i]), bias),
                     tail);
  }
  return vaddvq_f32(vaddq_f32(acc0, acc1)) + tail;
}

// --------------------------------------------------------- 4-bit rows ----
// Half-split nibble planes (quant_kernel_table.h): 8 codes per
// iteration from an 8-byte nibble extraction.

template <bool kHigh, bool kL2>
float Plane(const float* q, const std::uint8_t* codes, std::size_t len,
            float32x4_t vscale, float32x4_t vbias, float scale, float bias) {
  const uint8x8_t mask = vdup_n_u8(0x0F);
  float32x4_t acc0 = vdupq_n_f32(0.f), acc1 = vdupq_n_f32(0.f);
  std::size_t j = 0;
  for (; j + 8 <= len; j += 8) {
    uint8x8_t b = vld1_u8(codes + j);
    if constexpr (kHigh) {
      b = vshr_n_u8(b, 4);
    } else {
      b = vand_u8(b, mask);
    }
    const Dequant8x x = Dequant8(b, vscale, vbias);
    if constexpr (kL2) {
      const float32x4_t d0 = vsubq_f32(vld1q_f32(q + j), x.lo);
      acc0 = vfmaq_f32(acc0, d0, d0);
      const float32x4_t d1 = vsubq_f32(vld1q_f32(q + j + 4), x.hi);
      acc1 = vfmaq_f32(acc1, d1, d1);
    } else {
      acc0 = vfmaq_f32(acc0, vld1q_f32(q + j), x.lo);
      acc1 = vfmaq_f32(acc1, vld1q_f32(q + j + 4), x.hi);
    }
  }
  float tail = 0.f;
  for (; j < len; ++j) {
    const float c = static_cast<float>(kHigh ? (codes[j] >> 4)
                                             : (codes[j] & 0x0F));
    const float x = std::fmaf(scale, c, bias);
    if constexpr (kL2) {
      const float d = q[j] - x;
      tail = std::fmaf(d, d, tail);
    } else {
      tail = std::fmaf(q[j], x, tail);
    }
  }
  return vaddvq_f32(vaddq_f32(acc0, acc1)) + tail;
}

float L2U4(const float* q, const std::uint8_t* codes, std::size_t n,
           float scale, float bias) {
  const std::size_t h = (n + 1) / 2;
  const float32x4_t vscale = vdupq_n_f32(scale);
  const float32x4_t vbias = vdupq_n_f32(bias);
  return Plane<false, true>(q, codes, h, vscale, vbias, scale, bias) +
         Plane<true, true>(q + h, codes, n - h, vscale, vbias, scale, bias);
}

float IpU4(const float* q, const std::uint8_t* codes, std::size_t n,
           float scale, float bias) {
  const std::size_t h = (n + 1) / 2;
  const float32x4_t vscale = vdupq_n_f32(scale);
  const float32x4_t vbias = vdupq_n_f32(bias);
  return Plane<false, false>(q, codes, h, vscale, vbias, scale, bias) +
         Plane<true, false>(q + h, codes, n - h, vscale, vbias, scale, bias);
}

}  // namespace

const QuantKernelTable* QuantNeonTable() noexcept {
  static const QuantKernelTable table = {
      "neon", L2U8, IpU8, L2U4, IpU4,
  };
  return &table;
}

}  // namespace proximity::detail
