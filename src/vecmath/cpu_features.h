// Runtime CPU feature detection for the kernel-dispatch layer.
//
// x86: uses the compiler's CPUID helpers (__builtin_cpu_supports), which
// read the feature bits once at startup. AArch64: Advanced SIMD (NEON) is
// architecturally mandatory, so detection is a compile-time fact. Every
// other platform reports no SIMD and falls back to the portable kernels.
#pragma once

namespace proximity {

struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
  bool neon = false;
};

inline CpuFeatures DetectCpuFeatures() noexcept {
  CpuFeatures f;
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  __builtin_cpu_init();
  f.avx2 = __builtin_cpu_supports("avx2");
  f.fma = __builtin_cpu_supports("fma");
  f.avx512f = __builtin_cpu_supports("avx512f");
#elif defined(__aarch64__) || defined(_M_ARM64)
  f.neon = true;
#endif
  return f;
}

}  // namespace proximity
