// CompressedStore implementation: portable quantized reference kernels,
// quantized-kernel dispatch (mirrors dispatch.cpp), per-vector affine
// encoding, and the prefetched block scan loops.
#include "vecmath/compressed_store.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "vecmath/kernel_table.h"
#include "vecmath/kernels.h"
#include "vecmath/quant_kernel_table.h"

namespace proximity {

namespace detail {

namespace {

// ------------------------------------------ portable reference kernels ----
// Scalar fmaf loops, 4x unrolled like kernels.cpp. Dequantization stays
// fused in the accumulation: x̂ = fmaf(scale, c, bias), never a decoded
// buffer.

float L2U8(const float* q, const std::uint8_t* codes, std::size_t n,
           float scale, float bias) {
  float a0 = 0.f, a1 = 0.f, a2 = 0.f, a3 = 0.f;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float d0 =
        q[i] - std::fmaf(scale, static_cast<float>(codes[i]), bias);
    a0 = std::fmaf(d0, d0, a0);
    const float d1 =
        q[i + 1] - std::fmaf(scale, static_cast<float>(codes[i + 1]), bias);
    a1 = std::fmaf(d1, d1, a1);
    const float d2 =
        q[i + 2] - std::fmaf(scale, static_cast<float>(codes[i + 2]), bias);
    a2 = std::fmaf(d2, d2, a2);
    const float d3 =
        q[i + 3] - std::fmaf(scale, static_cast<float>(codes[i + 3]), bias);
    a3 = std::fmaf(d3, d3, a3);
  }
  for (; i < n; ++i) {
    const float d = q[i] - std::fmaf(scale, static_cast<float>(codes[i]), bias);
    a0 = std::fmaf(d, d, a0);
  }
  return (a0 + a1) + (a2 + a3);
}

float IpU8(const float* q, const std::uint8_t* codes, std::size_t n,
           float scale, float bias) {
  float a0 = 0.f, a1 = 0.f, a2 = 0.f, a3 = 0.f;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 = std::fmaf(q[i], std::fmaf(scale, static_cast<float>(codes[i]), bias),
                   a0);
    a1 = std::fmaf(q[i + 1],
                   std::fmaf(scale, static_cast<float>(codes[i + 1]), bias),
                   a1);
    a2 = std::fmaf(q[i + 2],
                   std::fmaf(scale, static_cast<float>(codes[i + 2]), bias),
                   a2);
    a3 = std::fmaf(q[i + 3],
                   std::fmaf(scale, static_cast<float>(codes[i + 3]), bias),
                   a3);
  }
  for (; i < n; ++i) {
    a0 = std::fmaf(q[i], std::fmaf(scale, static_cast<float>(codes[i]), bias),
                   a0);
  }
  return (a0 + a1) + (a2 + a3);
}

// 4-bit kernels walk the half-split nibble plan (quant_kernel_table.h):
// the low-nibble plane covers dims [0, h), the high-nibble plane dims
// [h, n), h = ceil(n/2). Each plane accumulates separately, so vector
// implementations can process a plane with contiguous query loads.

float L2U4(const float* q, const std::uint8_t* codes, std::size_t n,
           float scale, float bias) {
  const std::size_t h = (n + 1) / 2;
  float lo_acc = 0.f, hi_acc = 0.f;
  for (std::size_t j = 0; j < h; ++j) {
    const float c_lo = static_cast<float>(codes[j] & 0x0F);
    const float d_lo = q[j] - std::fmaf(scale, c_lo, bias);
    lo_acc = std::fmaf(d_lo, d_lo, lo_acc);
    if (j + h < n) {
      const float c_hi = static_cast<float>(codes[j] >> 4);
      const float d_hi = q[j + h] - std::fmaf(scale, c_hi, bias);
      hi_acc = std::fmaf(d_hi, d_hi, hi_acc);
    }
  }
  return lo_acc + hi_acc;
}

float IpU4(const float* q, const std::uint8_t* codes, std::size_t n,
           float scale, float bias) {
  const std::size_t h = (n + 1) / 2;
  float lo_acc = 0.f, hi_acc = 0.f;
  for (std::size_t j = 0; j < h; ++j) {
    const float c_lo = static_cast<float>(codes[j] & 0x0F);
    lo_acc = std::fmaf(q[j], std::fmaf(scale, c_lo, bias), lo_acc);
    if (j + h < n) {
      const float c_hi = static_cast<float>(codes[j] >> 4);
      hi_acc = std::fmaf(q[j + h], std::fmaf(scale, c_hi, bias), hi_acc);
    }
  }
  return lo_acc + hi_acc;
}

}  // namespace

const QuantKernelTable kPortableQuantTable = {
    "portable", L2U8, IpU8, L2U4, IpU4,
};

// Fallback definitions for ISA tables whose translation units are not part
// of this build (PROXIMITY_NATIVE_SIMD=OFF or foreign architecture).
#if !defined(PROXIMITY_HAVE_AVX2)
const QuantKernelTable* QuantAvx2Table() noexcept { return nullptr; }
#endif
#if !defined(PROXIMITY_HAVE_AVX512)
const QuantKernelTable* QuantAvx512Table() noexcept { return nullptr; }
#endif
#if !defined(PROXIMITY_HAVE_NEON)
const QuantKernelTable* QuantNeonTable() noexcept { return nullptr; }
#endif

const QuantKernelTable* ActiveQuantTable() noexcept {
  // Follows the float dispatch (including SetActiveSimdLevel overrides);
  // levels without a quantized TU degrade toward portable.
  switch (ActiveSimdLevel()) {
    case SimdLevel::kAvx512:
      if (const QuantKernelTable* t = QuantAvx512Table()) return t;
      [[fallthrough]];
    case SimdLevel::kAvx2:
      if (const QuantKernelTable* t = QuantAvx2Table()) return t;
      break;
    case SimdLevel::kNeon:
      if (const QuantKernelTable* t = QuantNeonTable()) return t;
      break;
    case SimdLevel::kPortable:
      break;
  }
  return &kPortableQuantTable;
}

}  // namespace detail

namespace {

struct BlockHeader {
  float scale;
  float bias;
  float sqnorm;
  std::uint32_t reserved;
};
static_assert(sizeof(BlockHeader) == CompressedStore::kHeaderBytes);

inline BlockHeader ReadBlockHeader(const std::uint8_t* block) noexcept {
  BlockHeader h;
  std::memcpy(&h, block, sizeof h);
  return h;
}

/// Prefetches every cache line of one block (blocks are 64-aligned in
/// stride, so `stride / 64` lines cover it exactly).
inline void PrefetchBlock(const std::uint8_t* block,
                          std::size_t stride) noexcept {
  for (std::size_t off = 0; off < stride; off += 64) {
    __builtin_prefetch(block + off, 0, 3);
  }
}

}  // namespace

std::string_view StorageLayoutName(StorageLayout layout) noexcept {
  switch (layout) {
    case StorageLayout::kFloat32:
      return "float32";
    case StorageLayout::kSq8:
      return "sq8";
    case StorageLayout::kSq4:
      return "sq4";
  }
  return "?";
}

bool ParseStorageLayout(std::string_view name, StorageLayout* out) noexcept {
  for (StorageLayout layout : {StorageLayout::kFloat32, StorageLayout::kSq8,
                               StorageLayout::kSq4}) {
    if (name == StorageLayoutName(layout)) {
      *out = layout;
      return true;
    }
  }
  return false;
}

CompressedStore::CompressedStore(std::size_t dim, StorageLayout layout)
    : dim_(dim), layout_(layout) {
  if (dim == 0) {
    throw std::invalid_argument("CompressedStore: dim must be > 0");
  }
  if (layout != StorageLayout::kSq8 && layout != StorageLayout::kSq4) {
    throw std::invalid_argument(
        "CompressedStore: layout must be sq8 or sq4 (float32 rows live in "
        "Matrix)");
  }
  code_bytes_ = layout == StorageLayout::kSq8 ? dim : (dim + 1) / 2;
  stride_ = (kHeaderBytes + code_bytes_ + kBlockAlign - 1) / kBlockAlign *
            kBlockAlign;
}

void CompressedStore::AppendRow(std::span<const float> vec) {
  if (dim_ == 0) {
    throw std::logic_error("CompressedStore::AppendRow: store has no dim");
  }
  if (vec.size() != dim_) {
    throw std::invalid_argument(
        "CompressedStore::AppendRow: dimension mismatch");
  }
  float lo = vec[0], hi = vec[0];
  for (const float x : vec) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  const float qmax = layout_ == StorageLayout::kSq4 ? 15.f : 255.f;
  const float range = hi - lo;
  BlockHeader h;
  h.scale = range > 0.f ? range / qmax : 0.f;
  h.bias = lo;
  h.sqnorm = SquaredNorm(vec);
  h.reserved = 0;
  const float inv = range > 0.f ? qmax / range : 0.f;
  const auto quantize = [&](float x) noexcept {
    const float c = (x - lo) * inv + 0.5f;
    return static_cast<std::uint8_t>(std::min(c, qmax));
  };

  data_.resize(data_.size() + stride_, 0);
  std::uint8_t* block = data_.data() + rows_ * stride_;
  std::memcpy(block, &h, sizeof h);
  std::uint8_t* codes = block + kHeaderBytes;
  if (layout_ == StorageLayout::kSq8) {
    for (std::size_t j = 0; j < dim_; ++j) codes[j] = quantize(vec[j]);
  } else {
    const std::size_t half = (dim_ + 1) / 2;
    for (std::size_t j = 0; j < half; ++j) {
      const std::uint8_t c_lo = quantize(vec[j]);
      const std::uint8_t c_hi =
          j + half < dim_ ? quantize(vec[j + half]) : std::uint8_t{0};
      codes[j] = static_cast<std::uint8_t>(c_lo | (c_hi << 4));
    }
  }
  ++rows_;
}

float CompressedStore::RowScale(std::size_t r) const noexcept {
  assert(r < rows_);
  return ReadBlockHeader(Block(r)).scale;
}

float CompressedStore::RowBias(std::size_t r) const noexcept {
  assert(r < rows_);
  return ReadBlockHeader(Block(r)).bias;
}

float CompressedStore::RowSqNorm(std::size_t r) const noexcept {
  assert(r < rows_);
  return ReadBlockHeader(Block(r)).sqnorm;
}

void CompressedStore::DecodeRow(std::size_t r, std::span<float> out) const {
  if (r >= rows_ || out.size() != dim_) {
    throw std::invalid_argument("CompressedStore::DecodeRow: bad row/size");
  }
  const std::uint8_t* block = Block(r);
  const BlockHeader h = ReadBlockHeader(block);
  const std::uint8_t* codes = block + kHeaderBytes;
  if (layout_ == StorageLayout::kSq8) {
    for (std::size_t j = 0; j < dim_; ++j) {
      out[j] = std::fmaf(h.scale, static_cast<float>(codes[j]), h.bias);
    }
  } else {
    const std::size_t half = (dim_ + 1) / 2;
    for (std::size_t j = 0; j < half; ++j) {
      out[j] = std::fmaf(h.scale, static_cast<float>(codes[j] & 0x0F), h.bias);
      if (j + half < dim_) {
        out[j + half] =
            std::fmaf(h.scale, static_cast<float>(codes[j] >> 4), h.bias);
      }
    }
  }
}

void CompressedStore::ScanRange(Metric metric, std::span<const float> query,
                                std::size_t row_lo, std::size_t count,
                                float* out) const {
  assert(query.size() == dim_);
  assert(row_lo + count <= rows_);
  const detail::QuantKernelTable* t = detail::ActiveQuantTable();
  const bool u4 = layout_ == StorageLayout::kSq4;
  const auto l2 = u4 ? t->l2_u4 : t->l2_u8;
  const auto ip = u4 ? t->ip_u4 : t->ip_u8;
  const float* q = query.data();
  float qnorm = 0.f;
  if (metric == Metric::kCosine) {
    qnorm = detail::internal::SqrtNonNeg(SquaredNorm(query));
  }
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint8_t* block = Block(row_lo + i);
    if (i + kPrefetchRowsAhead < count) {
      PrefetchBlock(block + kPrefetchRowsAhead * stride_, stride_);
    }
    const BlockHeader h = ReadBlockHeader(block);
    const std::uint8_t* codes = block + kHeaderBytes;
    switch (metric) {
      case Metric::kL2:
        out[i] = l2(q, codes, dim_, h.scale, h.bias);
        break;
      case Metric::kInnerProduct:
        out[i] = -ip(q, codes, dim_, h.scale, h.bias);
        break;
      case Metric::kCosine:
        out[i] = detail::internal::FinishCosine(
            ip(q, codes, dim_, h.scale, h.bias), qnorm, h.sqnorm);
        break;
    }
  }
}

void CompressedStore::GatherScan(Metric metric, std::span<const float> query,
                                 const std::uint32_t* ids, std::size_t count,
                                 float* out) const {
  assert(query.size() == dim_);
  const detail::QuantKernelTable* t = detail::ActiveQuantTable();
  const bool u4 = layout_ == StorageLayout::kSq4;
  const auto l2 = u4 ? t->l2_u4 : t->l2_u8;
  const auto ip = u4 ? t->ip_u4 : t->ip_u8;
  const float* q = query.data();
  float qnorm = 0.f;
  if (metric == Metric::kCosine) {
    qnorm = detail::internal::SqrtNonNeg(SquaredNorm(query));
  }
  for (std::size_t j = 0; j < count; ++j) {
    if (j + 1 < count) PrefetchBlock(Block(ids[j + 1]), stride_);
    const std::uint8_t* block = Block(ids[j]);
    const BlockHeader h = ReadBlockHeader(block);
    const std::uint8_t* codes = block + kHeaderBytes;
    switch (metric) {
      case Metric::kL2:
        out[j] = l2(q, codes, dim_, h.scale, h.bias);
        break;
      case Metric::kInnerProduct:
        out[j] = -ip(q, codes, dim_, h.scale, h.bias);
        break;
      case Metric::kCosine:
        out[j] = detail::internal::FinishCosine(
            ip(q, codes, dim_, h.scale, h.bias), qnorm, h.sqnorm);
        break;
    }
  }
}

float CompressedStore::RowDistance(Metric metric, std::span<const float> query,
                                   std::size_t r) const {
  float out = 0.f;
  ScanRange(metric, query, r, 1, &out);
  return out;
}

}  // namespace proximity
