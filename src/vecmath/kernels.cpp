// Portable reference kernels: 4x-unrolled accumulator loops that GCC/Clang
// auto-vectorize at -O3 (the portable-C++ equivalent of Rust
// Portable-SIMD, verified to emit packed FMA on x86-64). This translation
// unit defines the kPortableTable slot of the dispatch layer; the public
// entry points live in dispatch.cpp.
#include <cstddef>

#include "vecmath/kernel_table.h"

namespace proximity::detail {

namespace {

// Four independent accumulators break the FP dependency chain so the
// compiler can keep multiple vector FMAs in flight.
template <typename Accum>
float UnrolledReduce(const float* a, const float* b, std::size_t n,
                     Accum accum) noexcept {
  float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 = accum(acc0, a[i + 0], b[i + 0]);
    acc1 = accum(acc1, a[i + 1], b[i + 1]);
    acc2 = accum(acc2, a[i + 2], b[i + 2]);
    acc3 = accum(acc3, a[i + 3], b[i + 3]);
  }
  for (; i < n; ++i) acc0 = accum(acc0, a[i], b[i]);
  return (acc0 + acc1) + (acc2 + acc3);
}

inline float L2Step(float acc, float x, float y) noexcept {
  const float d = x - y;
  return acc + d * d;
}

inline float IpStep(float acc, float x, float y) noexcept {
  return acc + x * y;
}

float L2One(const float* a, const float* b, std::size_t n) {
  return UnrolledReduce(a, b, n, L2Step);
}

float IpOne(const float* a, const float* b, std::size_t n) {
  return UnrolledReduce(a, b, n, IpStep);
}

float SqNormOne(const float* a, std::size_t n) {
  return UnrolledReduce(a, a, n, IpStep);
}

// The portable batch kernels reuse the exact single-pair functions row by
// row, so batch results are trivially bit-identical to the single-pair
// path (the dispatch-layer contract).
void BatchL2(const float* q, const float* base, std::size_t count,
             std::size_t dim, float* out) {
  for (std::size_t r = 0; r < count; ++r) {
    out[r] = L2One(q, base + r * dim, dim);
  }
}

void BatchIp(const float* q, const float* base, std::size_t count,
             std::size_t dim, float* out) {
  for (std::size_t r = 0; r < count; ++r) {
    out[r] = IpOne(q, base + r * dim, dim);
  }
}

void BatchCos(const float* q, const float* base, std::size_t count,
              std::size_t dim, float* out) {
  const float qn = SqNormOne(q, dim);
  const float qnorm = internal::SqrtNonNeg(qn);
  for (std::size_t r = 0; r < count; ++r) {
    const float* row = base + r * dim;
    const float dot = IpOne(q, row, dim);
    const float rn = SqNormOne(row, dim);
    out[r] = internal::FinishCosine(dot, qnorm, rn);
  }
}

}  // namespace

const KernelTable kPortableTable = {
    "portable", L2One, IpOne, SqNormOne, BatchL2, BatchIp, BatchCos,
};

}  // namespace proximity::detail
