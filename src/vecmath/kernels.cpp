#include "vecmath/kernels.h"

#include <cassert>
#include <cmath>

namespace proximity {

namespace {

// Four independent accumulators break the FP dependency chain so the
// compiler can keep multiple vector FMAs in flight.
template <typename Accum>
float UnrolledReduce(const float* a, const float* b, std::size_t n,
                     Accum accum) noexcept {
  float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 = accum(acc0, a[i + 0], b[i + 0]);
    acc1 = accum(acc1, a[i + 1], b[i + 1]);
    acc2 = accum(acc2, a[i + 2], b[i + 2]);
    acc3 = accum(acc3, a[i + 3], b[i + 3]);
  }
  for (; i < n; ++i) acc0 = accum(acc0, a[i], b[i]);
  return (acc0 + acc1) + (acc2 + acc3);
}

inline float L2Step(float acc, float x, float y) noexcept {
  const float d = x - y;
  return acc + d * d;
}

inline float IpStep(float acc, float x, float y) noexcept {
  return acc + x * y;
}

}  // namespace

float L2SquaredDistance(std::span<const float> a,
                        std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  return UnrolledReduce(a.data(), b.data(), a.size(), L2Step);
}

float InnerProduct(std::span<const float> a,
                   std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  return UnrolledReduce(a.data(), b.data(), a.size(), IpStep);
}

float SquaredNorm(std::span<const float> a) noexcept {
  return UnrolledReduce(a.data(), a.data(), a.size(), IpStep);
}

float CosineDistance(std::span<const float> a,
                     std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  // Single pass: dot, |a|^2, |b|^2.
  float dot = 0.f, na = 0.f, nb = 0.f;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += pa[i] * pb[i];
    na += pa[i] * pa[i];
    nb += pb[i] * pb[i];
  }
  const float denom = std::sqrt(na) * std::sqrt(nb);
  if (denom <= 0.f) return 1.f;
  return 1.f - dot / denom;
}

float Distance(Metric metric, std::span<const float> a,
               std::span<const float> b) noexcept {
  switch (metric) {
    case Metric::kL2:
      return L2SquaredDistance(a, b);
    case Metric::kInnerProduct:
      return -InnerProduct(a, b);
    case Metric::kCosine:
      return CosineDistance(a, b);
  }
  return 0.f;
}

void BatchDistance(Metric metric, std::span<const float> query,
                   const float* base, std::size_t count, std::size_t dim,
                   float* out) noexcept {
  assert(query.size() == dim);
  for (std::size_t r = 0; r < count; ++r) {
    out[r] = Distance(metric, query, {base + r * dim, dim});
  }
}

}  // namespace proximity
