// Bounded top-k selection over (id, distance) streams.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.h"
#include "vecmath/metric.h"

namespace proximity {

/// Max-heap of the k closest neighbors seen so far.
///
/// Push is O(log k) and only allocates up front; Take() returns neighbors
/// sorted ascending by distance (ties by id) — the "ranked list of indices"
/// contract from §2.2 of the paper.
class TopK {
 public:
  explicit TopK(std::size_t k);

  std::size_t capacity() const noexcept { return k_; }
  std::size_t size() const noexcept { return heap_.size(); }
  bool full() const noexcept { return heap_.size() == k_; }

  /// The largest (worst) distance currently kept; +inf while not full.
  float WorstDistance() const noexcept;

  /// Considers a candidate; keeps it iff it beats the current worst.
  void Push(VectorId id, float distance) noexcept;

  /// Returns the kept neighbors sorted closest-first and clears the heap.
  std::vector<Neighbor> Take();

  /// Sorted copy without clearing.
  std::vector<Neighbor> Sorted() const;

 private:
  std::size_t k_;
  std::vector<Neighbor> heap_;  // max-heap by (distance, id)
};

/// Convenience: selects the k closest rows of a contiguous row-major block.
/// `base` holds `count` vectors of dimension `dim`; returned ids are
/// base_id + row. Distances run through the fused batch kernels tile by
/// tile. `row_norms` (per-row squared norms, e.g. Matrix::RowNorms())
/// enables the pre-normalized cosine path; it is ignored for L2, which
/// keeps the direct kernel for exact parity with Distance().
std::vector<Neighbor> SelectTopK(Metric metric, std::span<const float> query,
                                 const float* base, std::size_t count,
                                 std::size_t dim, std::size_t k,
                                 VectorId base_id = 0,
                                 const float* row_norms = nullptr);

}  // namespace proximity
