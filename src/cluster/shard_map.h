// Static cluster topology: shard groups, replica sets, and the
// consistent-hash ring that routes mutations (DESIGN.md §14).
//
// The map is a plain text file, one replica per line:
//
//   # comment / blank lines ignored
//   shard 0 rpc=127.0.0.1:7101 admin=127.0.0.1:7201
//   shard 0 rpc=127.0.0.1:7102 admin=127.0.0.1:7202
//   shard 1 rpc=127.0.0.1:7103
//
// Lines sharing a shard id form that group's replica set: every replica
// of group g serves the same corpus partition (`proximity_cli serve
// partition=g/G`), so the router may send a query leg to any healthy
// one. `admin=` is optional; replicas that publish it get active
// /healthz probes, the rest are health-checked passively (connection
// failures mark them down, a backoff retries them).
//
// Queries fan out to every group (scatter-gather). Mutations route to
// exactly one group through a consistent-hash ring — virtual nodes
// hashed per group, key = the target id for DELETE and the document
// text for INSERT — so a given key keeps routing to the same group as
// long as the map does not change, and map edits move only ~1/G of the
// key space.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace proximity::cluster {

struct Replica {
  std::string host;
  std::uint16_t port = 0;
  /// Admin-plane endpoint for active /healthz probes; port 0 = none.
  std::string admin_host;
  std::uint16_t admin_port = 0;

  std::string Address() const {
    return host + ":" + std::to_string(port);
  }
};

struct ShardGroup {
  std::uint32_t id = 0;
  std::vector<Replica> replicas;
};

class ShardMap {
 public:
  /// Parses the text format above. Throws std::invalid_argument on
  /// malformed lines, an empty map, or non-dense group ids (groups must
  /// be exactly 0..G-1 — each one serves corpus partition id/G, so a
  /// hole would be a missing slice of the corpus).
  static ShardMap Parse(const std::string& text);

  /// Reads `path` and parses it. Throws std::runtime_error when the
  /// file cannot be read.
  static ShardMap Load(const std::string& path);

  std::size_t num_groups() const noexcept { return groups_.size(); }
  const std::vector<ShardGroup>& groups() const noexcept { return groups_; }
  const ShardGroup& group(std::size_t g) const { return groups_[g]; }

  /// The group owning `key` on the consistent-hash ring.
  std::uint32_t GroupForKey(std::uint64_t key) const noexcept;

  /// FNV-1a over the bytes of `text` (the INSERT routing key).
  static std::uint64_t HashText(std::string_view text) noexcept;

 private:
  std::vector<ShardGroup> groups_;
  /// (ring point, group id), sorted by point. kVirtualNodes per group.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
};

}  // namespace proximity::cluster
