#include "cluster/shard_map.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <tuple>
#include <utility>

namespace proximity::cluster {
namespace {

// Ring points per group. 64 keeps the key-space split within a few
// percent of even for small clusters while the ring stays tiny.
constexpr std::size_t kVirtualNodes = 64;

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t Fnv1a(const void* data, std::size_t len,
                    std::uint64_t h = kFnvOffset) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

// 64-bit avalanche finalizer (the splitmix64/MurmurHash3 fmix64 step).
// FNV-1a alone is NOT ring-grade: inputs sharing a prefix and differing
// only in trailing bytes ("shard:0:17" vs "shard:0:18", or sequential
// integer keys) hash within ~|delta|*kFnvPrime of each other, so a
// group's 64 virtual nodes collapse into one tight cluster and the ring
// degenerates to G effective points with wildly uneven arcs. Mixing the
// FNV output spreads those clusters over the whole 64-bit circle.
std::uint64_t Mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

// Ring-point hash: FNV over the bytes, then the avalanche finisher.
std::uint64_t RingPoint(const void* data, std::size_t len) {
  return Mix64(Fnv1a(data, len));
}

// "host:port" -> (host, port). Throws on anything else.
std::pair<std::string, std::uint16_t> ParseEndpoint(
    const std::string& value, const std::string& what) {
  const auto colon = value.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= value.size()) {
    throw std::invalid_argument("shard map: bad " + what + " endpoint '" +
                                value + "' (want host:port)");
  }
  const std::string host = value.substr(0, colon);
  int port = 0;
  try {
    port = std::stoi(value.substr(colon + 1));
  } catch (const std::exception&) {
    port = -1;
  }
  if (port <= 0 || port > 65535) {
    throw std::invalid_argument("shard map: bad " + what + " port in '" +
                                value + "'");
  }
  return {host, static_cast<std::uint16_t>(port)};
}

}  // namespace

std::uint64_t ShardMap::HashText(std::string_view text) noexcept {
  return Fnv1a(text.data(), text.size());
}

ShardMap ShardMap::Parse(const std::string& text) {
  ShardMap map;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream tokens(line);
    std::string head;
    if (!(tokens >> head) || head[0] == '#') continue;
    if (head != "shard") {
      throw std::invalid_argument("shard map line " + std::to_string(lineno) +
                                  ": expected 'shard', got '" + head + "'");
    }
    std::uint32_t group = 0;
    if (!(tokens >> group)) {
      throw std::invalid_argument("shard map line " + std::to_string(lineno) +
                                  ": missing shard id");
    }
    Replica replica;
    std::string kv;
    while (tokens >> kv) {
      const auto eq = kv.find('=');
      if (eq == std::string::npos) {
        throw std::invalid_argument("shard map line " +
                                    std::to_string(lineno) +
                                    ": expected key=value, got '" + kv + "'");
      }
      const std::string key = kv.substr(0, eq);
      const std::string value = kv.substr(eq + 1);
      if (key == "rpc") {
        std::tie(replica.host, replica.port) = ParseEndpoint(value, "rpc");
      } else if (key == "admin") {
        std::tie(replica.admin_host, replica.admin_port) =
            ParseEndpoint(value, "admin");
      } else {
        throw std::invalid_argument("shard map line " +
                                    std::to_string(lineno) +
                                    ": unknown key '" + key + "'");
      }
    }
    if (replica.port == 0) {
      throw std::invalid_argument("shard map line " + std::to_string(lineno) +
                                  ": missing rpc=host:port");
    }
    if (map.groups_.size() <= group) map.groups_.resize(group + 1);
    map.groups_[group].id = group;
    map.groups_[group].replicas.push_back(std::move(replica));
  }
  if (map.groups_.empty()) {
    throw std::invalid_argument("shard map: no replicas defined");
  }
  for (std::size_t g = 0; g < map.groups_.size(); ++g) {
    if (map.groups_[g].replicas.empty()) {
      // Dense ids are load-bearing: group g serves corpus partition
      // g/G, so a hole is a missing slice of the corpus, not a
      // formatting nit.
      throw std::invalid_argument("shard map: group ids not dense (group " +
                                  std::to_string(g) + " has no replicas)");
    }
  }
  map.ring_.reserve(map.groups_.size() * kVirtualNodes);
  for (const ShardGroup& group : map.groups_) {
    for (std::size_t v = 0; v < kVirtualNodes; ++v) {
      const std::string point =
          "shard:" + std::to_string(group.id) + ":" + std::to_string(v);
      map.ring_.emplace_back(RingPoint(point.data(), point.size()),
                             group.id);
    }
  }
  std::sort(map.ring_.begin(), map.ring_.end());
  return map;
}

ShardMap ShardMap::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("shard map: cannot read '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return Parse(text.str());
}

std::uint32_t ShardMap::GroupForKey(std::uint64_t key) const noexcept {
  // Hash the key onto the ring (raw ids are sequential and FNV alone
  // keeps sequential inputs adjacent — see RingPoint) and walk
  // clockwise to the first virtual node.
  const std::uint64_t point = RingPoint(&key, sizeof(key));
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(),
      std::make_pair(point, std::uint32_t{0}));
  return it != ring_.end() ? it->second : ring_.front().second;
}

}  // namespace proximity::cluster
