// Cluster router front-end (DESIGN.md §14).
//
// One endpoint, N backend shard servers. The router reuses the epoll
// front-end of net::Server unchanged — it plugs into the RequestSink
// seam — so framing, admission control, the drain FSM and the
// completion ring are shared with the single-process server. What the
// sink does differently:
//
//   Queries  scatter-gather to every shard group over pipelined
//            net::Client connections. Legs ask for the v5 distance
//            side-channel and the per-group top-k lists are merged with
//            ShardedIndex::MergeSorted — the same exact (distance, id)
//            heap merge used in-process — so for exact indexes a routed
//            k-NN answer is bit-identical to the single-process one.
//            When a leg lacks distances (backend cache hit) the merge
//            falls back to deterministic rank interleaving (counted in
//            cluster.merge_fallbacks).
//   Mutations route to exactly one group via the shard map's
//            consistent-hash ring (DELETE by target id, INSERT by text
//            hash) and are relayed byte-identically — never hedged, and
//            retried on another replica only before the frame could
//            have been applied.
//
// Failure handling: per-replica health from active /healthz probes
// (replicas that publish admin=) plus passive down-marking on
// connection errors with a backoff retry; failed legs retry with
// backoff against the group's next healthy replica; a draining backend
// (UNAVAILABLE answers, /healthz 503) is routed around, which is what
// makes rolling restarts invisible to clients. Tail latency: after a
// configurable quantile of the group's recent leg latencies, a hedge
// leg opens against a second replica and the first complete response
// wins.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/shard_map.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics_registry.h"

namespace proximity::cluster {

struct RouterOptions {
  /// Front-end options (listen address, admission bounds, drain).
  net::ServerOptions server;
  /// Scatter-gather worker threads (each owns its backend connections).
  std::size_t workers = 4;
  /// Backend dial budget per attempt.
  int connect_timeout_ms = 1000;
  /// Per-leg receive budget; expiry fails the leg over to a replica.
  int recv_timeout_ms = 5000;
  /// Hedged requests: after HedgeDelay (the configured quantile of the
  /// group's recent leg latencies, floored at hedge_min_us) a second
  /// leg opens on another replica; first complete response wins.
  bool hedge = true;
  double hedge_quantile = 0.99;
  std::uint64_t hedge_min_us = 500;
  /// Leg latencies observed per group before hedging arms.
  std::size_t hedge_warmup = 16;
  /// Active /healthz probe cadence for replicas that publish admin=.
  int probe_interval_ms = 200;
  int probe_timeout_ms = 500;
  /// Backoff before a passively down-marked replica is dialed again.
  int replica_retry_ms = 1000;
  /// Replica attempts per leg (dial/send/drain failures) before the
  /// leg completes UNAVAILABLE.
  std::size_t max_leg_attempts = 3;
};

/// Router-wide counters (monotone; exact once workers have quiesced).
struct RouterStats {
  std::uint64_t queries = 0;
  std::uint64_t mutations = 0;
  std::uint64_t legs = 0;
  std::uint64_t hedges = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t failovers = 0;
  std::uint64_t retries = 0;
  std::uint64_t leg_errors = 0;
  std::uint64_t merge_fallbacks = 0;
  std::uint64_t probe_failures = 0;
};

/// Point-in-time view of one shard group (for /statusz and tests).
struct BackendStatus {
  std::uint32_t group = 0;
  std::size_t replicas = 0;
  std::size_t healthy = 0;
  std::size_t primary = 0;
  std::uint64_t inflight = 0;
  std::uint64_t sent = 0;
  std::uint64_t hedges = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t failovers = 0;
  std::uint64_t retries = 0;
  std::uint64_t errors = 0;
  std::vector<bool> replica_healthy;
};

class Router {
 public:
  explicit Router(ShardMap map, RouterOptions options = {});
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Starts workers, the probe thread and the front-end listener.
  /// Throws when the listen socket cannot be bound.
  void Start();

  /// Front-end port (after Start); useful with server.port == 0.
  std::uint16_t port() const noexcept { return server_.port(); }

  /// Graceful drain of the front-end; async-signal-safe.
  void RequestDrain() noexcept { server_.RequestDrain(); }

  /// Blocks until the front-end drained, then stops workers/probes.
  void Join();

  /// RequestDrain + Join. Idempotent; called by the destructor.
  void Stop();

  /// The embedded front-end (for InstallSignalDrain and its stats).
  net::Server& frontend() noexcept { return server_; }
  net::ServerHealth health() const noexcept { return server_.health(); }
  net::ServerStats server_stats() const { return server_.stats(); }

  const ShardMap& map() const noexcept { return map_; }
  RouterStats stats() const;
  std::vector<BackendStatus> backend_status() const;

  /// Text block for the admin plane's /statusz hook: router counters
  /// plus one line per shard group and per replica.
  std::string Statusz() const;

 private:
  using Clock = std::chrono::steady_clock;

  /// The RequestSink the front-end dispatches into: enqueue only, the
  /// event loop never blocks on a backend.
  struct SinkImpl final : net::RequestSink {
    explicit SinkImpl(Router& router) : router(router) {}
    void Submit(net::Request request, const SubmitOptions& options,
                BatchCallback done) override;
    Router& router;
  };

  struct ReplicaState {
    Replica replica;
    std::atomic<bool> healthy{true};
    std::atomic<Clock::rep> last_failure{0};
    /// Bumped on every MarkDown. A worker's cached connection dialed
    /// under an older epoch may be a half-dead socket from before the
    /// replica went down (the worker never touched it while the
    /// replica died and came back); EnsureConnected force-redials it
    /// instead of blaming the now-healthy replica for the stale FD.
    std::atomic<std::uint64_t> epoch{0};
  };

  struct BackendState {
    std::uint32_t id = 0;
    std::vector<std::unique_ptr<ReplicaState>> replicas;
    std::atomic<std::size_t> primary{0};
    std::atomic<std::uint64_t> inflight{0}, sent{0}, hedges{0},
        hedge_wins{0}, failovers{0}, retries{0}, errors{0};
    /// Recent leg latencies (us) feeding the hedge quantile.
    mutable std::mutex lat_mu;
    std::array<std::uint64_t, 128> lat_ring{};
    std::size_t lat_count = 0;
    std::size_t lat_next = 0;
    obs::GaugeHandle inflight_gauge;

    BackendState(std::uint32_t id, std::string gauge_name)
        : id(id), inflight_gauge(gauge_name) {}
  };

  struct Job {
    net::Request request;
    SubmitOptions options;
    BatchCallback done;
  };

  /// One worker's backend connections, [group][replica], plus the
  /// replica epoch each connection was dialed under (see ReplicaState).
  struct WorkerConns {
    std::vector<std::vector<net::Client>> clients;
    std::vector<std::vector<std::uint64_t>> epochs;
  };

  struct LegResult {
    RequestStatus status = RequestStatus::kUnavailable;
    net::Response resp;
  };

  void Enqueue(Job job);
  void WorkerLoop();
  void ProbeLoop();
  /// Signals workers/probes, joins them, then answers any queued jobs
  /// UNAVAILABLE so every admitted request gets exactly one completion.
  void ShutdownWorkers();

  void HandleQuery(WorkerConns& conns, Job& job);
  void HandleMutation(WorkerConns& conns, Job& job);

  /// Recv (with hedging) for an already-sent leg; retries the full
  /// send+recv against other replicas on failure.
  LegResult GatherLeg(WorkerConns& conns, std::size_t g,
                      const net::Request& forward, Clock::time_point deadline,
                      int sent_rep);

  /// Merges per-group answers into one result: the exact heap merge
  /// when every leg carries distances, rank interleaving otherwise.
  void MergeLegs(std::vector<net::Response>& legs, BatchResult* out);

  /// Replica choice for group g: the sticky primary when healthy, else
  /// the first healthy replica, else a down replica whose backoff
  /// elapsed. -1 when nothing is dialable. `exclude` skips one index.
  int PickReplica(std::size_t g, int exclude) const;
  void MarkDown(std::size_t g, std::size_t rep);
  bool EnsureConnected(WorkerConns& conns, std::size_t g, std::size_t rep);
  net::Client& Conn(WorkerConns& conns, std::size_t g, std::size_t rep);

  void RecordLegLatency(std::size_t g, std::uint64_t us);
  /// Hedge delay for group g in microseconds; -1 before warmup.
  std::int64_t HedgeDelayUs(std::size_t g) const;

  /// Receive budget left for this request, bounded by recv_timeout_ms.
  int BudgetMs(Clock::time_point deadline) const;

  ShardMap map_;
  RouterOptions options_;
  std::vector<std::unique_ptr<BackendState>> backends_;

  SinkImpl sink_{*this};
  net::Server server_;

  std::mutex jobs_mu_;
  std::condition_variable jobs_cv_;
  std::deque<Job> jobs_;
  bool stopping_ = false;

  std::vector<std::thread> workers_;
  std::thread probe_;
  std::atomic<bool> probe_stop_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  struct AtomicStats {
    std::atomic<std::uint64_t> queries{0}, mutations{0}, legs{0}, hedges{0},
        hedge_wins{0}, failovers{0}, retries{0}, leg_errors{0},
        merge_fallbacks{0}, probe_failures{0};
  };
  AtomicStats stats_;
};

}  // namespace proximity::cluster
