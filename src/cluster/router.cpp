#include "cluster/router.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/log.h"
#include "index/sharded_index.h"

namespace proximity::cluster {
namespace {

const obs::CounterHandle kObsQueries("cluster.queries");
const obs::CounterHandle kObsMutations("cluster.mutations");
const obs::CounterHandle kObsLegs("cluster.legs");
const obs::CounterHandle kObsHedges("cluster.hedges");
const obs::CounterHandle kObsHedgeWins("cluster.hedge_wins");
const obs::CounterHandle kObsFailovers("cluster.failovers");
const obs::CounterHandle kObsRetries("cluster.retries");
const obs::CounterHandle kObsLegErrors("cluster.leg_errors");
const obs::CounterHandle kObsMergeFallbacks("cluster.merge_fallbacks");
const obs::CounterHandle kObsProbeFailures("cluster.probe_failures");
// Client-facing request time (admission to completion) and individual
// backend leg time (send to first complete response).
const obs::HistogramHandle kObsRequestNs("cluster.request_ns");
const obs::HistogramHandle kObsLegNs("cluster.leg_ns");

using SteadyClock = std::chrono::steady_clock;

int RemainingMs(SteadyClock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - SteadyClock::now())
                        .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

std::uint64_t SinceUs(SteadyClock::time_point from) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          SteadyClock::now() - from)
          .count());
}

Nanos SinceNs(SteadyClock::time_point from) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             SteadyClock::now() - from)
      .count();
}

/// Waits for the first complete response on either leg. Returns 0 when
/// the primary answered, 1 for the hedge, -1 when the budget ran out or
/// both legs died. Legs that error are closed by TryRecv.
int AwaitEither(net::Client& primary, net::Client& hedge,
                net::Response* resp, int budget_ms) {
  const auto deadline =
      SteadyClock::now() + std::chrono::milliseconds(budget_ms);
  for (;;) {
    // Drain anything already buffered without blocking; TryRecv(0)
    // consumes every readable byte before reporting timeout.
    if (primary.connected()) {
      const auto st = primary.TryRecv(resp, 0);
      if (st == net::Client::RecvStatus::kOk) return 0;
    }
    if (hedge.connected()) {
      const auto st = hedge.TryRecv(resp, 0);
      if (st == net::Client::RecvStatus::kOk) return 1;
    }
    pollfd fds[2];
    nfds_t n = 0;
    if (primary.connected()) {
      fds[n++] = pollfd{primary.native_handle(), POLLIN, 0};
    }
    if (hedge.connected()) {
      fds[n++] = pollfd{hedge.native_handle(), POLLIN, 0};
    }
    if (n == 0) return -1;  // both legs died
    const int wait = RemainingMs(deadline);
    if (wait == 0) return -1;
    const int pr = ::poll(fds, n, wait);
    if (pr == 0) return -1;
    if (pr < 0 && errno != EINTR) return -1;
  }
}

/// Minimal blocking-with-deadline HTTP GET /healthz against a backend's
/// admin plane. Healthy = 200 plus a body that says "serving"; a
/// draining backend answers 503, which is exactly the signal the router
/// needs to route around a rolling restart.
bool ProbeHealthz(const std::string& host, std::uint16_t port,
                  int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  const auto deadline =
      SteadyClock::now() + std::chrono::milliseconds(timeout_ms);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  bool ok = ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1;
  if (ok) {
    // Non-blocking dial bounded by the probe budget.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    const int rc =
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno == EINPROGRESS) {
      pollfd pfd{fd, POLLOUT, 0};
      int err = -1;
      if (::poll(&pfd, 1, RemainingMs(deadline)) > 0) {
        socklen_t len = sizeof(err);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
          err = -1;
        }
      }
      ok = err == 0;
    } else {
      ok = rc == 0;
    }
  }
  std::string body;
  if (ok) {
    const std::string get =
        "GET /healthz HTTP/1.1\r\nHost: " + host +
        "\r\nConnection: close\r\n\r\n";
    std::size_t off = 0;
    while (ok && off < get.size()) {
      const ssize_t n = ::send(fd, get.data() + off, get.size() - off,
                               MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        pollfd pfd{fd, POLLOUT, 0};
        const int wait = RemainingMs(deadline);
        if (wait == 0 || ::poll(&pfd, 1, wait) <= 0) ok = false;
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      ok = false;
    }
    while (ok) {
      pollfd pfd{fd, POLLIN, 0};
      const int wait = RemainingMs(deadline);
      if (wait == 0 || ::poll(&pfd, 1, wait) <= 0) {
        ok = false;
        break;
      }
      char chunk[1024];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), MSG_DONTWAIT);
      if (n > 0) {
        body.append(chunk, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) break;  // server closed: response complete
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      ok = false;
    }
  }
  ::close(fd);
  return ok && body.find(" 200 ") != std::string::npos &&
         body.find("serving") != std::string::npos;
}

}  // namespace

void Router::SinkImpl::Submit(net::Request request,
                              const SubmitOptions& options,
                              BatchCallback done) {
  router.Enqueue(Job{std::move(request), options, std::move(done)});
}

Router::Router(ShardMap map, RouterOptions options)
    : map_(std::move(map)),
      options_(options),
      server_(sink_, options_.server) {
  backends_.reserve(map_.num_groups());
  for (const ShardGroup& group : map_.groups()) {
    auto b = std::make_unique<BackendState>(
        group.id,
        "cluster.backend." + std::to_string(group.id) + ".inflight");
    for (const Replica& replica : group.replicas) {
      auto rs = std::make_unique<ReplicaState>();
      rs->replica = replica;
      b->replicas.push_back(std::move(rs));
    }
    backends_.push_back(std::move(b));
  }
}

Router::~Router() { Stop(); }

void Router::Start() {
  if (started_.exchange(true)) {
    throw std::logic_error("cluster::Router: Start called twice");
  }
  const std::size_t workers = std::max<std::size_t>(1, options_.workers);
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  probe_ = std::thread([this] { ProbeLoop(); });
  try {
    server_.Start();
  } catch (...) {
    if (!stopped_.exchange(true)) ShutdownWorkers();
    throw;
  }
  LogInfo("cluster: routing {} shard groups on port {}", backends_.size(),
          server_.port());
}

void Router::Join() {
  server_.Join();
  // The front-end drain waited for in-flight completions, so the job
  // queue is normally empty by now; ShutdownWorkers still answers any
  // stragglers (drain timeout path) with UNAVAILABLE.
  if (!stopped_.exchange(true)) ShutdownWorkers();
}

void Router::Stop() {
  if (!started_.load()) {
    if (!stopped_.exchange(true)) ShutdownWorkers();
    return;
  }
  server_.RequestDrain();
  Join();
}

void Router::ShutdownWorkers() {
  probe_stop_.store(true, std::memory_order_release);
  {
    std::lock_guard lock(jobs_mu_);
    stopping_ = true;
  }
  jobs_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (probe_.joinable()) probe_.join();
  std::deque<Job> leftover;
  {
    std::lock_guard lock(jobs_mu_);
    leftover.swap(jobs_);
  }
  for (Job& job : leftover) {
    BatchResult result;
    result.status = RequestStatus::kUnavailable;
    job.done(std::move(result));
  }
}

void Router::Enqueue(Job job) {
  bool rejected = false;
  {
    std::lock_guard lock(jobs_mu_);
    if (stopping_) {
      rejected = true;
    } else {
      jobs_.push_back(std::move(job));
    }
  }
  if (rejected) {
    BatchResult result;
    result.status = RequestStatus::kUnavailable;
    job.done(std::move(result));
    return;
  }
  jobs_cv_.notify_one();
}

void Router::WorkerLoop() {
  // Every worker owns one connection per replica: legs pipeline across
  // workers without sharing sockets, and at most one request is in
  // flight per connection (losers of a hedge are closed), so response
  // correlation is positional.
  WorkerConns conns;
  conns.clients.reserve(backends_.size());
  conns.epochs.reserve(backends_.size());
  net::ClientOptions copts;
  copts.connect_timeout_ms = options_.connect_timeout_ms;
  for (const auto& b : backends_) {
    std::vector<net::Client> group;
    for (std::size_t i = 0; i < b->replicas.size(); ++i) {
      group.emplace_back(copts);
    }
    conns.clients.push_back(std::move(group));
    conns.epochs.emplace_back(b->replicas.size(), 0);
  }
  for (;;) {
    Job job;
    {
      std::unique_lock lock(jobs_mu_);
      jobs_cv_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stopping, queue drained
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    if (job.request.mutation_op != net::kMutationNone) {
      HandleMutation(conns, job);
    } else {
      HandleQuery(conns, job);
    }
  }
}

void Router::HandleQuery(WorkerConns& conns, Job& job) {
  stats_.queries.fetch_add(1);
  kObsQueries.Inc();
  const auto start = Clock::now();
  const std::size_t groups = backends_.size();

  // Query legs differ from the client's frame in exactly one word: the
  // v5 want-distances bit is ORed into flags so backends attach the
  // distances the exact merge needs. Everything else — id, deadline,
  // tenant, trace, text — relays untouched.
  net::Request forward = job.request;
  forward.flags |= net::kReqFlagWantDistances;

  for (const auto& b : backends_) {
    b->inflight_gauge.Set(
        static_cast<double>(b->inflight.fetch_add(1) + 1));
  }

  // Phase 1: pipelined scatter — every leg is sent before any is read,
  // so backend search time overlaps across groups.
  std::vector<int> sent_rep(groups, -1);
  for (std::size_t g = 0; g < groups; ++g) {
    const int rep = PickReplica(g, -1);
    if (rep < 0) continue;
    net::Client& c = Conn(conns, g, static_cast<std::size_t>(rep));
    if (EnsureConnected(conns, g, static_cast<std::size_t>(rep)) &&
        c.Send(forward)) {
      sent_rep[g] = rep;
    } else {
      c.Close();
      MarkDown(g, static_cast<std::size_t>(rep));
    }
  }

  // Phase 2: gather in group order; failed legs retry on replicas.
  std::vector<net::Response> legs(groups);
  RequestStatus status = RequestStatus::kOk;
  for (std::size_t g = 0; g < groups; ++g) {
    LegResult leg =
        GatherLeg(conns, g, forward, job.options.deadline, sent_rep[g]);
    if (leg.status != RequestStatus::kOk &&
        status == RequestStatus::kOk) {
      status = leg.status;
    }
    legs[g] = std::move(leg.resp);
  }

  for (const auto& b : backends_) {
    b->inflight_gauge.Set(
        static_cast<double>(b->inflight.fetch_sub(1) - 1));
  }

  BatchResult result;
  result.status = status;
  if (status == RequestStatus::kOk) MergeLegs(legs, &result);
  kObsRequestNs.Record(SinceNs(start));
  job.done(std::move(result));
}

Router::LegResult Router::GatherLeg(WorkerConns& conns, std::size_t g,
                                    const net::Request& forward,
                                    Clock::time_point deadline,
                                    int sent_rep) {
  BackendState& b = *backends_[g];
  int rep = sent_rep;
  bool sent = sent_rep >= 0;
  std::size_t attempts = 0;
  while (attempts < options_.max_leg_attempts) {
    if (!sent) {
      rep = PickReplica(g, rep);
      if (rep < 0) break;
      net::Client& c = Conn(conns, g, static_cast<std::size_t>(rep));
      if (!EnsureConnected(conns, g, static_cast<std::size_t>(rep)) ||
          !c.Send(forward)) {
        c.Close();
        MarkDown(g, static_cast<std::size_t>(rep));
        ++attempts;
        b.retries.fetch_add(1);
        stats_.retries.fetch_add(1);
        kObsRetries.Inc();
        continue;
      }
      sent = true;
    }
    stats_.legs.fetch_add(1);
    kObsLegs.Inc();
    b.sent.fetch_add(1);
    const auto leg_start = Clock::now();
    net::Client& c = Conn(conns, g, static_cast<std::size_t>(rep));
    net::Response resp;
    bool got = false;
    int winner = rep;

    const std::int64_t hedge_us =
        options_.hedge ? HedgeDelayUs(g) : -1;
    const int budget_ms = BudgetMs(deadline);
    if (hedge_us >= 0 &&
        static_cast<std::int64_t>(budget_ms) * 1000 > hedge_us) {
      // Give the primary its latency-quantile budget first.
      const int first_ms = static_cast<int>((hedge_us + 999) / 1000);
      const auto st = c.TryRecv(&resp, first_ms);
      if (st == net::Client::RecvStatus::kOk) {
        got = true;
      } else if (st == net::Client::RecvStatus::kTimeout) {
        const int hedge_rep = PickReplica(g, rep);
        if (hedge_rep >= 0) {
          net::Client& h =
              Conn(conns, g, static_cast<std::size_t>(hedge_rep));
          if (EnsureConnected(conns, g, static_cast<std::size_t>(hedge_rep)) &&
              h.Send(forward)) {
            b.hedges.fetch_add(1);
            stats_.hedges.fetch_add(1);
            kObsHedges.Inc();
            const int won = AwaitEither(c, h, &resp, BudgetMs(deadline));
            if (won == 0) {
              got = true;
              // The loser has a response in flight that would poison
              // the connection's next request; drop it.
              h.Close();
            } else if (won == 1) {
              got = true;
              winner = hedge_rep;
              b.hedge_wins.fetch_add(1);
              stats_.hedge_wins.fetch_add(1);
              kObsHedgeWins.Inc();
              c.Close();
            }
          } else {
            h.Close();
            MarkDown(g, static_cast<std::size_t>(hedge_rep));
          }
        }
      }
    }
    if (!got && c.connected()) {
      got = c.TryRecv(&resp, BudgetMs(deadline)) ==
            net::Client::RecvStatus::kOk;
    }

    if (got) {
      if (resp.status == RequestStatus::kUnavailable) {
        // A draining backend answers UNAVAILABLE without doing the
        // work: reroute to a replica (rolling-restart support).
        Conn(conns, g, static_cast<std::size_t>(winner)).Close();
        MarkDown(g, static_cast<std::size_t>(winner));
        sent = false;
        ++attempts;
        b.retries.fetch_add(1);
        stats_.retries.fetch_add(1);
        kObsRetries.Inc();
        continue;
      }
      RecordLegLatency(g, SinceUs(leg_start));
      kObsLegNs.Record(SinceNs(leg_start));
      LegResult out;
      out.status = resp.status;
      out.resp = std::move(resp);
      return out;
    }
    // Timeout or transport error: the replica is suspect; queries are
    // idempotent, so retry the whole leg elsewhere.
    c.Close();
    MarkDown(g, static_cast<std::size_t>(rep));
    b.errors.fetch_add(1);
    stats_.leg_errors.fetch_add(1);
    kObsLegErrors.Inc();
    sent = false;
    ++attempts;
  }
  return LegResult{};  // kUnavailable
}

void Router::HandleMutation(WorkerConns& conns, Job& job) {
  stats_.mutations.fetch_add(1);
  kObsMutations.Inc();
  const auto start = Clock::now();
  // Mutations are relayed byte-identically (the golden-pinned
  // passthrough contract) to exactly one group: DELETE routes by the
  // target id, INSERT by the text hash, both through the consistent
  // ring so a key keeps hitting the same group across requests.
  const net::Request& forward = job.request;
  const std::uint64_t key = forward.mutation_op == net::kMutationDelete
                                ? forward.mutation_target
                                : ShardMap::HashText(forward.text);
  const std::size_t g = map_.GroupForKey(key);
  BackendState& b = *backends_[g];
  b.inflight_gauge.Set(static_cast<double>(b.inflight.fetch_add(1) + 1));

  BatchResult result;
  result.status = RequestStatus::kUnavailable;
  int rep = -1;
  std::size_t attempts = 0;
  while (attempts < options_.max_leg_attempts) {
    rep = PickReplica(g, rep);
    if (rep < 0) break;
    net::Client& c = Conn(conns, g, static_cast<std::size_t>(rep));
    if (!EnsureConnected(conns, g, static_cast<std::size_t>(rep)) ||
        !c.Send(forward)) {
      // The frame never left this process: retrying on another replica
      // cannot double-apply.
      c.Close();
      MarkDown(g, static_cast<std::size_t>(rep));
      ++attempts;
      b.retries.fetch_add(1);
      stats_.retries.fetch_add(1);
      kObsRetries.Inc();
      continue;
    }
    stats_.legs.fetch_add(1);
    kObsLegs.Inc();
    b.sent.fetch_add(1);
    net::Response resp;
    const auto st = c.TryRecv(&resp, BudgetMs(job.options.deadline));
    if (st == net::Client::RecvStatus::kOk) {
      if (resp.status == RequestStatus::kUnavailable) {
        // Drain refusal happens before the driver sees the frame, so a
        // reroute is still double-apply-safe.
        c.Close();
        MarkDown(g, static_cast<std::size_t>(rep));
        ++attempts;
        b.retries.fetch_add(1);
        stats_.retries.fetch_add(1);
        kObsRetries.Inc();
        continue;
      }
      result.status = resp.status;
      result.documents = std::move(resp.documents);
      result.cache_hit = resp.cache_hit();
      result.coalesced = resp.coalesced();
      result.queue_wait_ns = static_cast<Nanos>(resp.queue_ns);
      break;
    }
    // Sent but unanswered: the mutation may have applied on the
    // backend. Never hedged, never retried — UNAVAILABLE is the only
    // double-apply-safe answer.
    c.Close();
    MarkDown(g, static_cast<std::size_t>(rep));
    b.errors.fetch_add(1);
    stats_.leg_errors.fetch_add(1);
    kObsLegErrors.Inc();
    break;
  }
  b.inflight_gauge.Set(static_cast<double>(b.inflight.fetch_sub(1) - 1));
  kObsRequestNs.Record(SinceNs(start));
  job.done(std::move(result));
}

void Router::MergeLegs(std::vector<net::Response>& legs,
                       BatchResult* out) {
  std::size_t k = 0;
  bool exact = true;
  bool all_hit = !legs.empty();
  for (const net::Response& leg : legs) {
    k = std::max(k, leg.documents.size());
    if (leg.distances.size() != leg.documents.size()) exact = false;
    if (!leg.cache_hit()) all_hit = false;
    if (leg.coalesced()) out->coalesced = true;
    out->queue_wait_ns =
        std::max(out->queue_wait_ns, static_cast<Nanos>(leg.queue_ns));
  }
  out->cache_hit = all_hit;
  if (exact) {
    // The same exact (distance, id) heap merge ShardedIndex runs
    // in-process — this is what makes a routed k-NN bit-identical to
    // the single-process answer for exact indexes.
    std::vector<std::vector<Neighbor>> parts(legs.size());
    for (std::size_t i = 0; i < legs.size(); ++i) {
      parts[i].reserve(legs[i].documents.size());
      for (std::size_t j = 0; j < legs[i].documents.size(); ++j) {
        parts[i].push_back(
            Neighbor{legs[i].documents[j], legs[i].distances[j]});
      }
    }
    const auto merged = ShardedIndex::MergeSorted(parts, k);
    out->documents.reserve(merged.size());
    out->distances.reserve(merged.size());
    for (const Neighbor& n : merged) {
      out->documents.push_back(n.id);
      out->distances.push_back(n.distance);
    }
    return;
  }
  // At least one leg lacks distances (backend cache hit): fall back to
  // deterministic rank interleaving in group order. Ranks are merged
  // breadth-first, so every group's best answers survive truncation.
  stats_.merge_fallbacks.fetch_add(1);
  kObsMergeFallbacks.Inc();
  for (std::size_t rank = 0; out->documents.size() < k; ++rank) {
    bool any = false;
    for (const net::Response& leg : legs) {
      if (rank >= leg.documents.size()) continue;
      any = true;
      if (out->documents.size() < k) {
        out->documents.push_back(leg.documents[rank]);
      }
    }
    if (!any) break;
  }
}

int Router::PickReplica(std::size_t g, int exclude) const {
  const BackendState& b = *backends_[g];
  const std::size_t n = b.replicas.size();
  const std::size_t primary = b.primary.load(std::memory_order_relaxed);
  if (primary < n && static_cast<int>(primary) != exclude &&
      b.replicas[primary]->healthy.load(std::memory_order_relaxed)) {
    return static_cast<int>(primary);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (static_cast<int>(i) == exclude) continue;
    if (b.replicas[i]->healthy.load(std::memory_order_relaxed)) {
      return static_cast<int>(i);
    }
  }
  // Everything is down: re-dial a replica whose backoff elapsed (how a
  // probe-less replica gets discovered again after it comes back).
  const auto now = Clock::now().time_since_epoch().count();
  const auto retry = std::chrono::duration_cast<Clock::duration>(
                         std::chrono::milliseconds(options_.replica_retry_ms))
                         .count();
  for (std::size_t i = 0; i < n; ++i) {
    if (static_cast<int>(i) == exclude) continue;
    if (now - b.replicas[i]->last_failure.load(std::memory_order_relaxed) >=
        retry) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void Router::MarkDown(std::size_t g, std::size_t rep) {
  BackendState& b = *backends_[g];
  ReplicaState& r = *b.replicas[rep];
  r.healthy.store(false, std::memory_order_relaxed);
  r.last_failure.store(Clock::now().time_since_epoch().count(),
                       std::memory_order_relaxed);
  // Invalidate every worker's cached connection to this replica: any
  // socket dialed before this point must be re-dialed before reuse.
  r.epoch.fetch_add(1, std::memory_order_relaxed);
  // Move the sticky primary off the dead replica so subsequent legs
  // stop dialing it until its backoff elapses (or a probe revives it).
  if (b.primary.load(std::memory_order_relaxed) == rep) {
    for (std::size_t i = 0; i < b.replicas.size(); ++i) {
      if (i == rep ||
          !b.replicas[i]->healthy.load(std::memory_order_relaxed)) {
        continue;
      }
      b.primary.store(i, std::memory_order_relaxed);
      b.failovers.fetch_add(1);
      stats_.failovers.fetch_add(1);
      kObsFailovers.Inc();
      break;
    }
  }
}

bool Router::EnsureConnected(WorkerConns& conns, std::size_t g,
                             std::size_t rep) {
  ReplicaState& r = *backends_[g]->replicas[rep];
  net::Client& client = conns.clients[g][rep];
  const std::uint64_t epoch = r.epoch.load(std::memory_order_relaxed);
  if (client.connected() && conns.epochs[g][rep] == epoch) return true;
  // Either never dialed, or dialed before the replica's last
  // down-mark: a socket from the old incarnation may still look
  // connected while being half-dead. Redial rather than let the stale
  // FD's transport error re-mark a healthy replica down.
  client.Close();
  if (!client.Connect(r.replica.host, r.replica.port)) return false;
  conns.epochs[g][rep] = epoch;
  return true;
}

net::Client& Router::Conn(WorkerConns& conns, std::size_t g,
                          std::size_t rep) {
  return conns.clients[g][rep];
}

void Router::RecordLegLatency(std::size_t g, std::uint64_t us) {
  BackendState& b = *backends_[g];
  std::lock_guard lock(b.lat_mu);
  b.lat_ring[b.lat_next] = us;
  b.lat_next = (b.lat_next + 1) % b.lat_ring.size();
  b.lat_count = std::min(b.lat_count + 1, b.lat_ring.size());
}

std::int64_t Router::HedgeDelayUs(std::size_t g) const {
  const BackendState& b = *backends_[g];
  std::array<std::uint64_t, 128> copy{};
  std::size_t n = 0;
  {
    std::lock_guard lock(b.lat_mu);
    n = b.lat_count;
    if (n < std::max<std::size_t>(1, options_.hedge_warmup)) return -1;
    copy = b.lat_ring;
  }
  n = std::min(n, copy.size());
  const auto idx = std::min(
      n - 1, static_cast<std::size_t>(options_.hedge_quantile *
                                      static_cast<double>(n)));
  std::nth_element(copy.begin(),
                   copy.begin() + static_cast<std::ptrdiff_t>(idx),
                   copy.begin() + static_cast<std::ptrdiff_t>(n));
  return std::max<std::int64_t>(
      static_cast<std::int64_t>(copy[idx]),
      static_cast<std::int64_t>(options_.hedge_min_us));
}

int Router::BudgetMs(Clock::time_point deadline) const {
  long long budget = options_.recv_timeout_ms;
  if (deadline != Clock::time_point::max()) {
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - Clock::now())
            .count();
    budget = std::min<long long>(budget, std::max<long long>(0, left));
  }
  return static_cast<int>(budget);
}

void Router::ProbeLoop() {
  // Sliced sleep so Stop() is never stuck behind a full interval.
  const auto slice = std::chrono::milliseconds(10);
  auto next_probe = Clock::now();
  while (!probe_stop_.load(std::memory_order_acquire)) {
    if (Clock::now() < next_probe) {
      std::this_thread::sleep_for(slice);
      continue;
    }
    next_probe = Clock::now() +
                 std::chrono::milliseconds(options_.probe_interval_ms);
    for (std::size_t g = 0; g < backends_.size(); ++g) {
      BackendState& b = *backends_[g];
      for (std::size_t i = 0; i < b.replicas.size(); ++i) {
        ReplicaState& r = *b.replicas[i];
        if (r.replica.admin_port == 0) continue;  // passive-only replica
        if (probe_stop_.load(std::memory_order_acquire)) return;
        const bool ok = ProbeHealthz(r.replica.admin_host,
                                     r.replica.admin_port,
                                     options_.probe_timeout_ms);
        if (ok) {
          r.healthy.store(true, std::memory_order_relaxed);
        } else {
          stats_.probe_failures.fetch_add(1);
          kObsProbeFailures.Inc();
          MarkDown(g, i);
        }
      }
    }
  }
}

RouterStats Router::stats() const {
  RouterStats s;
  s.queries = stats_.queries.load();
  s.mutations = stats_.mutations.load();
  s.legs = stats_.legs.load();
  s.hedges = stats_.hedges.load();
  s.hedge_wins = stats_.hedge_wins.load();
  s.failovers = stats_.failovers.load();
  s.retries = stats_.retries.load();
  s.leg_errors = stats_.leg_errors.load();
  s.merge_fallbacks = stats_.merge_fallbacks.load();
  s.probe_failures = stats_.probe_failures.load();
  return s;
}

std::vector<BackendStatus> Router::backend_status() const {
  std::vector<BackendStatus> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) {
    BackendStatus s;
    s.group = b->id;
    s.replicas = b->replicas.size();
    s.primary = b->primary.load();
    s.inflight = b->inflight.load();
    s.sent = b->sent.load();
    s.hedges = b->hedges.load();
    s.hedge_wins = b->hedge_wins.load();
    s.failovers = b->failovers.load();
    s.retries = b->retries.load();
    s.errors = b->errors.load();
    for (const auto& r : b->replicas) {
      const bool healthy = r->healthy.load();
      s.replica_healthy.push_back(healthy);
      if (healthy) ++s.healthy;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string Router::Statusz() const {
  std::ostringstream out;
  const RouterStats s = stats();
  out << "cluster: groups=" << backends_.size()
      << " workers=" << options_.workers
      << " hedge=" << (options_.hedge ? "on" : "off")
      << " quantile=" << options_.hedge_quantile << "\n";
  out << "cluster: queries=" << s.queries << " mutations=" << s.mutations
      << " legs=" << s.legs << " hedges=" << s.hedges
      << " hedge_wins=" << s.hedge_wins << " failovers=" << s.failovers
      << " retries=" << s.retries << " leg_errors=" << s.leg_errors
      << " merge_fallbacks=" << s.merge_fallbacks
      << " probe_failures=" << s.probe_failures << "\n";
  for (const BackendStatus& b : backend_status()) {
    out << "backend " << b.group << ": replicas=" << b.replicas
        << " healthy=" << b.healthy << " primary=" << b.primary
        << " inflight=" << b.inflight << " sent=" << b.sent
        << " hedges=" << b.hedges << " hedge_wins=" << b.hedge_wins
        << " failovers=" << b.failovers << " retries=" << b.retries
        << " errors=" << b.errors << "\n";
    const BackendState& bs = *backends_[b.group];
    for (std::size_t i = 0; i < bs.replicas.size(); ++i) {
      const ReplicaState& r = *bs.replicas[i];
      out << "backend " << b.group << " replica " << i << ": "
          << r.replica.Address()
          << (r.healthy.load() ? " healthy" : " down")
          << (r.replica.admin_port != 0 ? " probe=admin" : " probe=passive")
          << "\n";
    }
  }
  return out.str();
}

}  // namespace proximity::cluster
