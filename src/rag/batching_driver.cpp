#include "rag/batching_driver.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <utility>

#include "common/stats.h"
#include "common/stopwatch.h"
#include "obs/metrics_registry.h"
#include "obs/span.h"
#include "vecmath/kernels.h"

namespace proximity {

namespace {
const obs::CounterHandle kObsSubmitted("serve.submitted");
const obs::CounterHandle kObsHits("serve.hits");
const obs::CounterHandle kObsRetrieved("serve.retrieved");
const obs::CounterHandle kObsCoalesced("serve.coalesced");
const obs::CounterHandle kObsShed("serve.shed");
const obs::CounterHandle kObsExpired("serve.expired");
const obs::CounterHandle kObsBatches("serve.batches");
// Values are batch sizes (unitless), not nanoseconds; the log-bucket
// histogram just needs a monotone integer scale.
const obs::HistogramHandle kObsBatchSize("serve.batch_size");
const obs::HistogramHandle kObsQueueWait("serve.queue_wait_ns");
}  // namespace

BatchingDriver::BatchingDriver(const VectorIndex& index,
                               ConcurrentProximityCache& cache,
                               const HashEmbedder* embedder,
                               BatchingDriverOptions options)
    : index_(index), cache_(cache), embedder_(embedder), options_(options) {
  if (options_.max_batch == 0) {
    throw std::invalid_argument("BatchingDriver: max_batch must be > 0");
  }
  if (options_.top_k == 0) {
    throw std::invalid_argument("BatchingDriver: top_k must be > 0");
  }
  flusher_ = std::thread([this] { FlusherLoop(); });
}

BatchingDriver::~BatchingDriver() { Shutdown(); }

namespace {

// Adapts the future API onto the callback path: non-OK outcomes become
// exceptions on the future.
BatchCallback PromiseCallback(
    std::shared_ptr<std::promise<std::vector<VectorId>>> promise) {
  return [promise = std::move(promise)](BatchResult result) {
    if (result.status == RequestStatus::kOk) {
      promise->set_value(std::move(result.documents));
    } else {
      promise->set_exception(std::make_exception_ptr(std::runtime_error(
          std::string("BatchingDriver: ") +
          RequestStatusName(result.status))));
    }
  };
}

}  // namespace

void BatchingDriver::Fail(Pending& entry, RequestStatus status,
                          Nanos queue_wait_ns) {
  BatchResult result;
  result.status = status;
  result.queue_wait_ns = queue_wait_ns;
  entry.done(std::move(result));
}

bool BatchingDriver::Enqueue(Pending&& entry) {
  entry.enqueued = std::chrono::steady_clock::now();
  bool shed = false;
  {
    std::lock_guard lock(mu_);
    if (stop_) return false;
    ++stats_.submitted;
    if (options_.queue_bound != 0 &&
        pending_.size() >= options_.queue_bound) {
      ++stats_.shed;
      shed = true;
    } else {
      pending_.push_back(std::move(entry));
    }
  }
  kObsSubmitted.Inc();
  if (shed) {
    kObsShed.Inc();
    Fail(entry, RequestStatus::kResourceExhausted, 0);
    return true;
  }
  cv_.notify_all();
  return true;
}

std::future<std::vector<VectorId>> BatchingDriver::Submit(
    std::vector<float> embedding) {
  if (embedding.size() != index_.dim()) {
    throw std::invalid_argument("BatchingDriver::Submit: dim mismatch");
  }
  auto promise = std::make_shared<std::promise<std::vector<VectorId>>>();
  auto future = promise->get_future();
  Pending entry;
  entry.embedding = std::move(embedding);
  entry.done = PromiseCallback(std::move(promise));
  entry.deadline = std::chrono::steady_clock::time_point::max();
  if (!Enqueue(std::move(entry))) {
    throw std::runtime_error("BatchingDriver: Submit after Shutdown");
  }
  return future;
}

std::future<std::vector<VectorId>> BatchingDriver::SubmitText(
    std::string text) {
  if (embedder_ == nullptr) {
    throw std::logic_error("BatchingDriver::SubmitText: no embedder");
  }
  if (text.empty()) {
    // Empty text embeds to the zero vector; route it through the
    // embedding path so the flush loop can key the text path on
    // non-emptiness.
    return Submit(std::vector<float>(index_.dim(), 0.0f));
  }
  auto promise = std::make_shared<std::promise<std::vector<VectorId>>>();
  auto future = promise->get_future();
  Pending entry;
  entry.text = std::move(text);
  entry.done = PromiseCallback(std::move(promise));
  entry.deadline = std::chrono::steady_clock::time_point::max();
  if (!Enqueue(std::move(entry))) {
    throw std::runtime_error("BatchingDriver: Submit after Shutdown");
  }
  return future;
}

void BatchingDriver::SubmitAsync(std::vector<float> embedding,
                                 const SubmitOptions& opts,
                                 BatchCallback done) {
  Pending entry;
  entry.done = std::move(done);
  entry.deadline = opts.deadline;
  if (embedding.size() != index_.dim()) {
    Fail(entry, RequestStatus::kInvalidArgument, 0);
    return;
  }
  entry.embedding = std::move(embedding);
  if (!Enqueue(std::move(entry))) {
    Fail(entry, RequestStatus::kUnavailable, 0);
  }
}

void BatchingDriver::SubmitTextAsync(std::string text,
                                     const SubmitOptions& opts,
                                     BatchCallback done) {
  if (embedder_ == nullptr) {
    throw std::logic_error("BatchingDriver::SubmitTextAsync: no embedder");
  }
  Pending entry;
  entry.done = std::move(done);
  entry.deadline = opts.deadline;
  if (text.empty()) {
    entry.embedding.assign(index_.dim(), 0.0f);
  } else {
    entry.text = std::move(text);
  }
  if (!Enqueue(std::move(entry))) {
    Fail(entry, RequestStatus::kUnavailable, 0);
  }
}

std::vector<VectorId> BatchingDriver::Query(std::span<const float> embedding) {
  return Submit({embedding.begin(), embedding.end()}).get();
}

void BatchingDriver::Flush() {
  std::unique_lock lock(mu_);
  ++drain_requested_;
  cv_.notify_all();
  // Wait until the flusher has taken everything that was pending; the
  // caller's futures observe completion of the actual processing.
  cv_.wait(lock, [&] { return pending_.empty(); });
}

void BatchingDriver::Shutdown() {
  std::lock_guard shutdown_lock(shutdown_mu_);
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

BatchingDriverStats BatchingDriver::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void BatchingDriver::FlusherLoop() {
  std::unique_lock lock(mu_);
  for (;;) {
    if (pending_.empty()) {
      drain_served_ = drain_requested_;  // nothing left to drain
      if (stop_) return;
      cv_.wait(lock, [&] { return stop_ || !pending_.empty(); });
      cv_.notify_all();  // wake any Flush() waiting on an empty queue
      continue;
    }

    const auto deadline =
        pending_.front().enqueued +
        std::chrono::microseconds(options_.max_wait_us);
    cv_.wait_until(lock, deadline, [&] {
      return stop_ || drain_requested_ > drain_served_ ||
             pending_.size() >= options_.max_batch;
    });

    if (pending_.empty()) continue;
    const bool full = pending_.size() >= options_.max_batch;
    const bool drain = stop_ || drain_requested_ > drain_served_;
    if (!full && !drain &&
        std::chrono::steady_clock::now() < deadline) {
      continue;  // spurious wakeup
    }
    if (full) {
      ++stats_.flushes_on_full;
    } else if (drain) {
      ++stats_.flushes_on_drain;
    } else {
      ++stats_.flushes_on_timer;
    }

    const std::size_t take = std::min(pending_.size(), options_.max_batch);
    std::vector<Pending> batch;
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    ++stats_.batches;
    if (pending_.empty()) {
      drain_served_ = drain_requested_;
      cv_.notify_all();  // unblock Flush()
    }

    lock.unlock();
    ProcessBatch(std::move(batch));
    lock.lock();
  }
}

void BatchingDriver::ProcessBatch(std::vector<Pending> batch) {
  kObsBatches.Inc();
  kObsBatchSize.Record(static_cast<Nanos>(batch.size()));
  const auto flush_start = std::chrono::steady_clock::now();
  std::vector<Nanos> waited(batch.size(), 0);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    waited[i] = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    flush_start - batch[i].enqueued)
                    .count();
    kObsQueueWait.Record(waited[i]);
  }

  std::uint64_t hits = 0, retrieved = 0, coalesced = 0, expired = 0,
                completed = 0;
  std::vector<bool> done(batch.size(), false);
  try {
    // 0. Deadline check before any work: an entry whose deadline passed
    //    while queued completes with DEADLINE_EXCEEDED and is excluded
    //    from the embed/probe/search below — it is never run.
    std::vector<std::size_t> live;
    live.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].deadline < flush_start) {
        Fail(batch[i], RequestStatus::kDeadlineExceeded, waited[i]);
        done[i] = true;
        ++expired;
        ++completed;
      } else {
        live.push_back(i);
      }
    }

    // 1. Embed queued text in one batch call.
    std::vector<std::size_t> text_ids;
    std::vector<std::string> texts;
    for (const std::size_t i : live) {
      if (!batch[i].text.empty()) {
        text_ids.push_back(i);
        texts.push_back(batch[i].text);
      }
    }
    if (!texts.empty()) {
      const obs::Span span(obs::Stage::kEmbed);
      const Matrix embedded = embedder_->EmbedBatch(texts);
      for (std::size_t j = 0; j < text_ids.size(); ++j) {
        const auto row = embedded.Row(j);
        batch[text_ids[j]].embedding.assign(row.begin(), row.end());
      }
    }

    // 2. Probe the shared cache.
    std::vector<std::size_t> misses;
    for (const std::size_t i : live) {
      if (auto cached = cache_.Lookup(batch[i].embedding)) {
        BatchResult result;
        result.documents = std::move(*cached);
        result.cache_hit = true;
        result.queue_wait_ns = waited[i];
        batch[i].done(std::move(result));
        done[i] = true;
        ++hits;
        ++completed;
      } else {
        misses.push_back(i);
      }
    }

    // 3. Coalesce τ-similar misses onto one leader retrieval per
    //    neighborhood (the in-batch analogue of single-flight).
    std::vector<std::size_t> leaders;
    std::vector<std::size_t> leader_of(batch.size(), 0);
    const float tolerance = cache_.tolerance();
    const Metric metric = cache_.metric();
    for (const std::size_t i : misses) {
      bool joined = false;
      if (options_.coalesce) {
        for (std::size_t rank = 0; rank < leaders.size(); ++rank) {
          if (Distance(metric, batch[i].embedding,
                       batch[leaders[rank]].embedding) <= tolerance) {
            leader_of[i] = rank;
            joined = true;
            break;
          }
        }
      }
      if (!joined) {
        leader_of[i] = leaders.size();
        leaders.push_back(i);
      }
    }

    // 4. One grouped sharded search for all leaders.
    std::vector<std::vector<VectorId>> leader_docs(leaders.size());
    if (!leaders.empty()) {
      Matrix queries(0, index_.dim());
      queries.Reserve(leaders.size());
      for (const std::size_t i : leaders) {
        queries.AppendRow(batch[i].embedding);
      }
      const auto results = index_.SearchBatch(queries, options_.top_k);
      for (std::size_t rank = 0; rank < leaders.size(); ++rank) {
        leader_docs[rank].reserve(results[rank].size());
        for (const auto& n : results[rank]) {
          leader_docs[rank].push_back(n.id);
        }
        cache_.Insert(batch[leaders[rank]].embedding, leader_docs[rank]);
      }
    }

    // 5. Complete misses: leaders own a retrieval, followers share it.
    for (const std::size_t i : misses) {
      const std::size_t rank = leader_of[i];
      BatchResult result;
      result.documents = leader_docs[rank];
      result.queue_wait_ns = waited[i];
      if (leaders[rank] == i) {
        ++retrieved;
      } else {
        result.coalesced = true;
        ++coalesced;
      }
      batch[i].done(std::move(result));
      done[i] = true;
      ++completed;
    }
  } catch (...) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (done[i]) continue;
      Fail(batch[i], RequestStatus::kInternal, waited[i]);
      done[i] = true;
      ++completed;
    }
  }

  kObsHits.Inc(hits);
  kObsRetrieved.Inc(retrieved);
  kObsCoalesced.Inc(coalesced);
  kObsExpired.Inc(expired);
  std::lock_guard lock(mu_);
  stats_.hits += hits;
  stats_.retrieved += retrieved;
  stats_.coalesced += coalesced;
  stats_.expired += expired;
  stats_.completed += completed;
}

ConcurrentRunResult RunStreamBatched(
    const Workload& workload, const VectorIndex& index,
    ConcurrentProximityCache& cache, const AnswerModel& answer_model,
    std::uint64_t answer_seed, const std::vector<StreamEntry>& stream,
    const Matrix& embeddings, std::size_t threads,
    const BatchingDriverOptions& options,
    BatchingDriverStats* driver_stats, const std::atomic<bool>* stop) {
  if (embeddings.rows() != stream.size()) {
    throw std::invalid_argument(
        "RunStreamBatched: embeddings/stream size mismatch");
  }
  if (threads == 0) {
    throw std::invalid_argument("RunStreamBatched: threads must be > 0");
  }

  const std::vector<double> difficulties =
      MakeDifficultyTable(workload.questions.size(), answer_seed);

  BatchingDriver driver(index, cache, nullptr, options);

  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> processed{0};
  std::atomic<std::size_t> correct{0};
  std::mutex agg_mu;
  LatencyHistogram latencies;
  double relevance_sum = 0.0;
  double misleading_sum = 0.0;

  auto worker = [&] {
    LatencyHistogram local_latencies;
    double local_relevance = 0.0, local_misleading = 0.0;
    std::size_t local_correct = 0;
    for (;;) {
      if (stop != nullptr && stop->load(std::memory_order_relaxed)) break;
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= stream.size()) break;

      Stopwatch watch;
      const std::vector<VectorId> documents =
          driver.Query(embeddings.Row(i));
      local_latencies.Record(watch.ElapsedNanos());

      const Question& question = workload.questions[stream[i].question];
      ContextJudgment judgment;
      {
        const obs::Span prompt_span(obs::Stage::kPrompt);
        judgment = JudgeContext(documents, question, workload);
      }
      local_relevance += judgment.relevance;
      local_misleading += judgment.misleading;
      const obs::Span generate_span(obs::Stage::kGenerate);
      if (answer_model.AnswerCorrectly(judgment,
                                       difficulties[stream[i].question])) {
        ++local_correct;
      }
      processed.fetch_add(1, std::memory_order_relaxed);
    }
    correct.fetch_add(local_correct, std::memory_order_relaxed);
    std::lock_guard lock(agg_mu);
    latencies.Merge(local_latencies);
    relevance_sum += local_relevance;
    misleading_sum += local_misleading;
  };

  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) clients.emplace_back(worker);
  for (auto& t : clients) t.join();
  driver.Shutdown();
  if (driver_stats != nullptr) *driver_stats = driver.stats();

  ConcurrentRunResult result;
  result.cache_stats = cache.stats();
  // An interrupted run (stop flag) reports over the queries it actually
  // served, so partial metrics stay meaningful instead of diluted.
  const std::size_t served = processed.load();
  const double n = static_cast<double>(served);
  result.metrics.queries = served;
  if (served > 0) {
    result.metrics.accuracy = static_cast<double>(correct.load()) / n;
    result.metrics.hit_rate =
        result.cache_stats.lookups > 0
            ? static_cast<double>(result.cache_stats.hits) /
                  static_cast<double>(result.cache_stats.lookups)
            : 0.0;
    result.metrics.mean_latency_ms = latencies.MeanNanos() / kNanosPerMilli;
    result.metrics.p50_latency_ms =
        latencies.QuantileNanos(0.5) / kNanosPerMilli;
    result.metrics.p99_latency_ms =
        latencies.QuantileNanos(0.99) / kNanosPerMilli;
    result.metrics.total_latency_ms =
        latencies.MeanNanos() * n / kNanosPerMilli;
    result.metrics.mean_relevance = relevance_sum / n;
    result.metrics.mean_misleading = misleading_sum / n;
  }
  return result;
}

}  // namespace proximity
