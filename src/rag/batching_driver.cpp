#include "rag/batching_driver.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <utility>

#include "common/stats.h"
#include "common/stopwatch.h"
#include "obs/metrics_registry.h"
#include "obs/span.h"
#include "vecmath/kernels.h"

namespace proximity {

namespace {
const obs::CounterHandle kObsSubmitted("serve.submitted");
const obs::CounterHandle kObsHits("serve.hits");
const obs::CounterHandle kObsAnswerHits("serve.answer_hits");
const obs::CounterHandle kObsRetrieved("serve.retrieved");
const obs::CounterHandle kObsCoalesced("serve.coalesced");
const obs::CounterHandle kObsShed("serve.shed");
const obs::CounterHandle kObsExpired("serve.expired");
const obs::CounterHandle kObsQuotaShed("serve.quota_shed");
const obs::CounterHandle kObsMutations("serve.mutations");
const obs::CounterHandle kObsBatches("serve.batches");
// Values are batch sizes (unitless), not nanoseconds; the log-bucket
// histogram just needs a monotone integer scale.
const obs::HistogramHandle kObsBatchSize("serve.batch_size");
const obs::HistogramHandle kObsQueueWait("serve.queue_wait_ns");
}  // namespace

BatchingDriver::BatchingDriver(const VectorIndex& index,
                               ConcurrentProximityCache& cache,
                               const HashEmbedder* embedder,
                               BatchingDriverOptions options)
    : index_(index),
      cache_(&cache),
      registry_(nullptr),
      embedder_(embedder),
      options_(options),
      router_(options.router) {
  if (options_.max_batch == 0) {
    throw std::invalid_argument("BatchingDriver: max_batch must be > 0");
  }
  if (options_.top_k == 0) {
    throw std::invalid_argument("BatchingDriver: top_k must be > 0");
  }
  flusher_ = std::thread([this] { FlusherLoop(); });
}

BatchingDriver::BatchingDriver(const VectorIndex& index,
                               TenantRegistry& registry,
                               const HashEmbedder* embedder,
                               BatchingDriverOptions options)
    : index_(index),
      cache_(nullptr),
      registry_(&registry),
      embedder_(embedder),
      options_(options),
      router_(options.router) {
  if (options_.max_batch == 0) {
    throw std::invalid_argument("BatchingDriver: max_batch must be > 0");
  }
  if (options_.top_k == 0) {
    throw std::invalid_argument("BatchingDriver: top_k must be > 0");
  }
  if (registry.dim() != index.dim()) {
    throw std::invalid_argument(
        "BatchingDriver: registry/index dim mismatch");
  }
  flusher_ = std::thread([this] { FlusherLoop(); });
}

BatchingDriver::~BatchingDriver() { Shutdown(); }

namespace {

// Adapts the future API onto the callback path: non-OK outcomes become
// exceptions on the future.
BatchCallback PromiseCallback(
    std::shared_ptr<std::promise<std::vector<VectorId>>> promise) {
  return [promise = std::move(promise)](BatchResult result) {
    if (result.status == RequestStatus::kOk) {
      promise->set_value(std::move(result.documents));
    } else {
      promise->set_exception(std::make_exception_ptr(std::runtime_error(
          std::string("BatchingDriver: ") +
          RequestStatusName(result.status))));
    }
  };
}

}  // namespace

void BatchingDriver::Fail(Pending& entry, RequestStatus status,
                          Nanos queue_wait_ns) {
  BatchResult result;
  result.status = status;
  result.queue_wait_ns = queue_wait_ns;
  entry.done(std::move(result));
}

ConcurrentProximityCache& BatchingDriver::CacheFor(TenantId tenant) {
  return registry_ != nullptr ? registry_->CacheFor(tenant) : *cache_;
}

bool BatchingDriver::Enqueue(Pending&& entry) {
  entry.enqueued = std::chrono::steady_clock::now();
  enum class Outcome { kQueued, kShed, kQuotaShed };
  Outcome outcome = Outcome::kQueued;
  TenantId tenant = kDefaultTenant;
  {
    std::lock_guard lock(mu_);
    if (stop_) return false;
    // Resolve the tenant while the entry is still cheap to refuse:
    // quota runs before any embedding/search work is spent on it.
    if (registry_ != nullptr) {
      entry.tenant = registry_->Resolve(entry.tenant);
    } else {
      entry.tenant = kDefaultTenant;
    }
    tenant = entry.tenant;
    ++stats_.submitted;
    BatchingDriverStats& tstats = tenant_stats_[tenant];
    ++tstats.submitted;
    bool admitted = true;
    if (registry_ != nullptr &&
        registry_->Admit(tenant) != Admission::kAdmitted) {
      admitted = false;
      ++stats_.quota_shed;
      ++tstats.quota_shed;
      outcome = Outcome::kQuotaShed;
    }
    if (admitted) {
      if (options_.queue_bound != 0 &&
          total_pending_ >= options_.queue_bound) {
        ++stats_.shed;
        ++tstats.shed;
        outcome = Outcome::kShed;
        // The quota token stays spent (rate counts admission attempts)
        // but the inflight slot is released: the entry never runs.
        if (registry_ != nullptr) registry_->OnDone(tenant);
      } else {
        entry.seq = next_seq_++;
        TenantQueue& tq = queues_[tenant];
        if (tq.queue.empty()) rr_.push_back(tenant);
        tq.queue.push_back(std::move(entry));
        ++total_pending_;
      }
    }
  }
  kObsSubmitted.Inc();
  if (registry_ != nullptr) {
    TenantCounters delta;
    delta.submitted = 1;
    if (outcome == Outcome::kShed) delta.shed = 1;
    if (outcome == Outcome::kQuotaShed) delta.quota_shed = 1;
    registry_->Record(tenant, delta);
  }
  if (outcome != Outcome::kQueued) {
    (outcome == Outcome::kShed ? kObsShed : kObsQuotaShed).Inc();
    Fail(entry, RequestStatus::kResourceExhausted, 0);
    return true;
  }
  cv_.notify_all();
  return true;
}

std::future<std::vector<VectorId>> BatchingDriver::Submit(
    std::vector<float> embedding) {
  if (embedding.size() != index_.dim()) {
    throw std::invalid_argument("BatchingDriver::Submit: dim mismatch");
  }
  auto promise = std::make_shared<std::promise<std::vector<VectorId>>>();
  auto future = promise->get_future();
  Pending entry;
  entry.embedding = std::move(embedding);
  entry.done = PromiseCallback(std::move(promise));
  entry.deadline = std::chrono::steady_clock::time_point::max();
  if (!Enqueue(std::move(entry))) {
    throw std::runtime_error("BatchingDriver: Submit after Shutdown");
  }
  return future;
}

std::future<std::vector<VectorId>> BatchingDriver::SubmitText(
    std::string text) {
  if (embedder_ == nullptr) {
    throw std::logic_error("BatchingDriver::SubmitText: no embedder");
  }
  if (text.empty()) {
    // Empty text embeds to the zero vector; route it through the
    // embedding path so the flush loop can key the text path on
    // non-emptiness.
    return Submit(std::vector<float>(index_.dim(), 0.0f));
  }
  auto promise = std::make_shared<std::promise<std::vector<VectorId>>>();
  auto future = promise->get_future();
  Pending entry;
  entry.text = std::move(text);
  entry.done = PromiseCallback(std::move(promise));
  entry.deadline = std::chrono::steady_clock::time_point::max();
  if (!Enqueue(std::move(entry))) {
    throw std::runtime_error("BatchingDriver: Submit after Shutdown");
  }
  return future;
}

void BatchingDriver::SubmitAsync(std::vector<float> embedding,
                                 const SubmitOptions& opts,
                                 BatchCallback done) {
  Pending entry;
  entry.done = std::move(done);
  entry.deadline = opts.deadline;
  entry.tenant = opts.tenant;
  entry.trace = opts.trace;
  if (embedding.size() != index_.dim()) {
    Fail(entry, RequestStatus::kInvalidArgument, 0);
    return;
  }
  entry.embedding = std::move(embedding);
  if (!Enqueue(std::move(entry))) {
    Fail(entry, RequestStatus::kUnavailable, 0);
  }
}

void BatchingDriver::EnableMutation(VectorIndex& index) {
  if (&index != &index_) {
    throw std::invalid_argument(
        "BatchingDriver::EnableMutation: not the driver's index");
  }
  if (!index.SupportsMutation()) {
    throw std::invalid_argument(
        "BatchingDriver::EnableMutation: index is build-once (" +
        index.Describe() + ")");
  }
  mutable_index_.store(&index, std::memory_order_release);
}

void BatchingDriver::SubmitMutationAsync(MutationOp op, std::string text,
                                         VectorId target,
                                         const SubmitOptions& opts,
                                         BatchCallback done) {
  Pending entry;
  entry.done = std::move(done);
  entry.deadline = opts.deadline;
  entry.tenant = opts.tenant;
  entry.trace = opts.trace;
  // Malformed mutations are refused inline, before they spend a queue
  // slot or a quota token — same contract as a bad-dim SubmitAsync.
  if (!mutation_enabled() ||
      (op != MutationOp::kInsert && op != MutationOp::kDelete) ||
      (op == MutationOp::kInsert &&
       (embedder_ == nullptr || text.empty()))) {
    Fail(entry, RequestStatus::kInvalidArgument, 0);
    return;
  }
  entry.op = op;
  if (op == MutationOp::kInsert) {
    entry.text = std::move(text);
  } else {
    entry.target = target;
  }
  if (!Enqueue(std::move(entry))) {
    Fail(entry, RequestStatus::kUnavailable, 0);
  }
}

void BatchingDriver::SubmitTextAsync(std::string text,
                                     const SubmitOptions& opts,
                                     BatchCallback done) {
  if (embedder_ == nullptr) {
    throw std::logic_error("BatchingDriver::SubmitTextAsync: no embedder");
  }
  Pending entry;
  entry.done = std::move(done);
  entry.deadline = opts.deadline;
  entry.tenant = opts.tenant;
  entry.trace = opts.trace;
  if (text.empty()) {
    entry.embedding.assign(index_.dim(), 0.0f);
  } else {
    entry.text = std::move(text);
  }
  if (!Enqueue(std::move(entry))) {
    Fail(entry, RequestStatus::kUnavailable, 0);
  }
}

std::vector<VectorId> BatchingDriver::Query(std::span<const float> embedding) {
  return Submit({embedding.begin(), embedding.end()}).get();
}

void BatchingDriver::Flush() {
  std::unique_lock lock(mu_);
  ++drain_requested_;
  cv_.notify_all();
  // Wait until the flusher has taken everything that was pending; the
  // caller's futures observe completion of the actual processing.
  cv_.wait(lock, [&] { return total_pending_ == 0; });
}

void BatchingDriver::Shutdown() {
  std::lock_guard shutdown_lock(shutdown_mu_);
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

BatchingDriverStats BatchingDriver::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

std::map<TenantId, BatchingDriverStats> BatchingDriver::tenant_stats()
    const {
  std::lock_guard lock(mu_);
  return tenant_stats_;
}

std::size_t BatchingDriver::pending() const {
  std::lock_guard lock(mu_);
  return total_pending_;
}

std::map<TenantId, std::size_t> BatchingDriver::queue_depths() const {
  std::lock_guard lock(mu_);
  std::map<TenantId, std::size_t> depths;
  for (const auto& [id, tq] : queues_) {
    if (!tq.queue.empty()) depths[id] = tq.queue.size();
  }
  return depths;
}

std::chrono::steady_clock::time_point BatchingDriver::OldestEnqueued()
    const {
  auto oldest = std::chrono::steady_clock::time_point::max();
  for (const auto& [id, tq] : queues_) {
    if (!tq.queue.empty()) {
      oldest = std::min(oldest, tq.queue.front().enqueued);
    }
  }
  return oldest;
}

std::vector<BatchingDriver::Pending> BatchingDriver::TakeBatch(
    std::size_t take) {
  std::vector<Pending> batch;
  batch.reserve(take);
  if (!options_.fair || queues_.size() <= 1) {
    // Strict global FIFO: repeatedly pop the smallest arrival seq
    // across queue fronts (each queue is itself in arrival order).
    while (batch.size() < take && total_pending_ > 0) {
      TenantQueue* best = nullptr;
      TenantId best_id = kDefaultTenant;
      for (auto& [id, tq] : queues_) {
        if (tq.queue.empty()) continue;
        if (best == nullptr ||
            tq.queue.front().seq < best->queue.front().seq) {
          best = &tq;
          best_id = id;
        }
      }
      batch.push_back(std::move(best->queue.front()));
      best->queue.pop_front();
      --total_pending_;
      if (best->queue.empty()) {
        rr_.erase(std::find(rr_.begin(), rr_.end(), best_id));
      }
    }
    return batch;
  }
  // Weighted deficit-round-robin: each visit credits the tenant its
  // weight; one credit buys one batch slot. Leftover credit carries to
  // the tenant's next visit (and is forfeited when its queue empties),
  // so over time every backlogged tenant gets batch slots proportional
  // to its weight no matter how hard another tenant floods.
  while (batch.size() < take && total_pending_ > 0) {
    const TenantId id = rr_.front();
    rr_.pop_front();
    TenantQueue& tq = queues_[id];
    tq.deficit += registry_ != nullptr ? registry_->WeightFor(id) : 1.0;
    while (tq.deficit >= 1.0 && !tq.queue.empty() &&
           batch.size() < take) {
      batch.push_back(std::move(tq.queue.front()));
      tq.queue.pop_front();
      tq.deficit -= 1.0;
      --total_pending_;
    }
    if (tq.queue.empty()) {
      tq.deficit = 0.0;
    } else {
      rr_.push_back(id);
    }
  }
  return batch;
}

void BatchingDriver::FlusherLoop() {
  std::unique_lock lock(mu_);
  for (;;) {
    if (total_pending_ == 0) {
      drain_served_ = drain_requested_;  // nothing left to drain
      if (stop_) return;
      cv_.wait(lock, [&] { return stop_ || total_pending_ > 0; });
      cv_.notify_all();  // wake any Flush() waiting on an empty queue
      continue;
    }

    const auto deadline =
        OldestEnqueued() + std::chrono::microseconds(options_.max_wait_us);
    cv_.wait_until(lock, deadline, [&] {
      return stop_ || drain_requested_ > drain_served_ ||
             total_pending_ >= options_.max_batch;
    });

    if (total_pending_ == 0) continue;
    const bool full = total_pending_ >= options_.max_batch;
    const bool drain = stop_ || drain_requested_ > drain_served_;
    if (!full && !drain &&
        std::chrono::steady_clock::now() < deadline) {
      continue;  // spurious wakeup
    }
    if (full) {
      ++stats_.flushes_on_full;
    } else if (drain) {
      ++stats_.flushes_on_drain;
    } else {
      ++stats_.flushes_on_timer;
    }

    std::vector<Pending> batch =
        TakeBatch(std::min(total_pending_, options_.max_batch));
    ++stats_.batches;
    if (total_pending_ == 0) {
      drain_served_ = drain_requested_;
      cv_.notify_all();  // unblock Flush()
    }

    lock.unlock();
    ProcessBatch(std::move(batch));
    lock.lock();
  }
}

void BatchingDriver::ProcessBatch(std::vector<Pending> batch) {
  kObsBatches.Inc();
  kObsBatchSize.Record(static_cast<Nanos>(batch.size()));
  const auto flush_start = std::chrono::steady_clock::now();
  std::vector<Nanos> waited(batch.size(), 0);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    waited[i] = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    flush_start - batch[i].enqueued)
                    .count();
    kObsQueueWait.Record(waited[i]);
    // Traced entries record their admission-queue wait as a span.
    obs::EmitChildSpan(batch[i].trace, obs::TraceOp::kQueue,
                       obs::TraceRelNanos(batch[i].enqueued), waited[i]);
  }

  std::uint64_t hits = 0, answer_hits = 0, retrieved = 0, coalesced = 0,
                expired = 0, mutations = 0, completed = 0;
  // Answer reuse is a registry-mode feature: per-tenant answer caches
  // live in the registry, and single-cache drivers have nowhere
  // isolation-safe to keep one.
  const bool answer_reuse = options_.answer_reuse && registry_ != nullptr;
  // Per-tenant view of the same outcome deltas (merged under mu_ at the
  // end, mirrored into tenant.<label>.* via the registry).
  std::map<TenantId, TenantCounters> deltas;
  // Outcomes are buffered and delivered only AFTER the stats merge: a
  // caller that has seen its completion must find the entry already
  // accounted in stats()/tenant_stats() — bench/serve_load reads the
  // counters the moment its last response lands.
  std::vector<BatchResult> results(batch.size());
  std::vector<bool> done(batch.size(), false);
  try {
    // 0. Deadline check before any work: an entry whose deadline passed
    //    while queued completes with DEADLINE_EXCEEDED and is excluded
    //    from the embed/probe/search below — it is never run.
    std::vector<std::size_t> live;
    live.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].deadline < flush_start) {
        results[i].status = RequestStatus::kDeadlineExceeded;
        results[i].queue_wait_ns = waited[i];
        done[i] = true;
        ++expired;
        ++completed;
        ++deltas[batch[i].tenant].expired;
      } else {
        live.push_back(i);
      }
    }

    // 1. Embed queued text in one batch call — one fused EmbedBatch
    //    across every tenant in the flush.
    std::vector<std::size_t> text_ids;
    std::vector<std::string> texts;
    for (const std::size_t i : live) {
      if (!batch[i].text.empty()) {
        text_ids.push_back(i);
        texts.push_back(batch[i].text);
      }
    }
    if (!texts.empty()) {
      const Nanos embed_start = obs::TraceNowNs();
      {
        const obs::Span span(obs::Stage::kEmbed);
        const Matrix embedded = embedder_->EmbedBatch(texts);
        for (std::size_t j = 0; j < text_ids.size(); ++j) {
          const auto row = embedded.Row(j);
          batch[text_ids[j]].embedding.assign(row.begin(), row.end());
        }
      }
      // One EmbedBatch call serves many requests: attribute the shared
      // timing to every traced entry that contributed text.
      const Nanos embed_ns = obs::TraceNowNs() - embed_start;
      for (const std::size_t i : text_ids) {
        obs::EmitChildSpan(batch[i].trace, obs::TraceOp::kEmbed,
                           embed_start, embed_ns);
      }
    }

    // 1.5 Apply live-corpus mutations in arrival order, BEFORE any of
    //     this flush's cache probes: queries batched alongside a
    //     mutation observe the post-mutation index, and the generation
    //     stamp pushed below reflects it. Insert embeddings came out of
    //     the shared EmbedBatch above (mutation text is text like any
    //     other).
    VectorIndex* mindex = mutable_index_.load(std::memory_order_acquire);
    std::vector<std::size_t> muts;
    for (const std::size_t i : live) {
      if (batch[i].op != MutationOp::kNone) muts.push_back(i);
    }
    std::sort(muts.begin(), muts.end(),
              [&](std::size_t a, std::size_t b) {
                return batch[a].seq < batch[b].seq;
              });
    for (const std::size_t i : muts) {
      results[i].queue_wait_ns = waited[i];
      try {
        if (batch[i].op == MutationOp::kInsert) {
          const VectorId id = mindex->Insert(batch[i].embedding);
          results[i].documents = {id};
        } else if (!mindex->Delete(batch[i].target)) {
          results[i].status = RequestStatus::kInvalidArgument;
        }
      } catch (const std::exception&) {
        results[i].status = RequestStatus::kInvalidArgument;
      }
      done[i] = true;
      ++mutations;
      ++completed;
      ++deltas[batch[i].tenant].mutations;
    }

    // 1.6 Push the index's mutation generation into every tenant cache
    //     this flush will probe (pull-at-probe: covers mutations by
    //     other drivers or background Consolidate too, not just ours).
    if (mindex != nullptr) {
      const std::uint64_t gen = mindex->generation();
      std::map<TenantId, bool> stamped;
      for (const std::size_t i : live) {
        if (done[i]) continue;
        if (!stamped.emplace(batch[i].tenant, true).second) continue;
        CacheFor(batch[i].tenant).set_generation(gen);
        // The answer tier honors the same staleness contract: a hit
        // whose entry predates this stamp must not be served.
        if (answer_reuse) {
          registry_->AnswerCacheFor(batch[i].tenant).set_generation(gen);
        }
      }
    }

    // 1.7 Answer-reuse probe (DESIGN.md §15): a current-generation
    //     τ-hit in the submitting tenant's answer cache completes here
    //     with the cached entry's evidence — no retrieval cache probe,
    //     no search. Stale τ-hits ride the normal path instead; the
    //     router audits their cached evidence against the fresh result
    //     in step 6 and the entry is refreshed.
    std::map<std::size_t, ConcurrentAnswerCache::Hit> stale_answers;
    if (answer_reuse) {
      for (const std::size_t i : live) {
        if (done[i]) continue;
        const TenantId tenant = batch[i].tenant;
        const obs::ScopedTraceContext trace_scope(batch[i].trace);
        auto hit =
            registry_->AnswerCacheFor(tenant).Lookup(batch[i].embedding);
        if (!hit) continue;
        if (hit->stale) {
          stale_answers.emplace(i, std::move(*hit));
          continue;
        }
        results[i].documents = hit->answer.source_docs;
        results[i].distances = hit->answer.source_distances;
        results[i].answer_hit = true;
        results[i].queue_wait_ns = waited[i];
        done[i] = true;
        ++answer_hits;
        ++completed;
        ++deltas[tenant].answer_hits;
      }
    }

    // 2. Probe each entry's tenant cache (the tenant's private cache in
    //    registry mode; the one shared cache otherwise). Mutation
    //    entries are already done and never probe.
    std::vector<std::size_t> misses;
    for (const std::size_t i : live) {
      if (done[i]) continue;
      const TenantId tenant = batch[i].tenant;
      // The probe runs with the entry's trace as the thread context, so
      // the cache's own spans (kCacheLookup/kCacheScan) join the trace.
      const obs::ScopedTraceContext trace_scope(batch[i].trace);
      auto cached = CacheFor(tenant).Lookup(batch[i].embedding);
      if (registry_ != nullptr) {
        registry_->ObserveLookup(tenant, cached.has_value());
      }
      if (cached) {
        results[i].documents = std::move(*cached);
        results[i].cache_hit = true;
        results[i].queue_wait_ns = waited[i];
        done[i] = true;
        ++hits;
        ++completed;
        ++deltas[tenant].hits;
      } else {
        misses.push_back(i);
      }
    }

    // 3. Coalesce τ-similar misses onto one leader retrieval per
    //    neighborhood (the in-batch analogue of single-flight). Only
    //    entries of the SAME tenant may share a leader — a cross-tenant
    //    join would leak one tenant's approximate answer to another —
    //    and similarity is judged by the leader tenant's own τ.
    std::vector<std::size_t> leaders;
    std::vector<std::size_t> leader_of(batch.size(), 0);
    std::map<TenantId, float> tolerances;
    const auto tolerance_of = [&](TenantId tenant) {
      auto it = tolerances.find(tenant);
      if (it == tolerances.end()) {
        it = tolerances.emplace(tenant, CacheFor(tenant).tolerance())
                 .first;
      }
      return it->second;
    };
    const Metric metric =
        registry_ != nullptr
            ? registry_->CacheFor(kDefaultTenant).metric()
            : cache_->metric();
    for (const std::size_t i : misses) {
      bool joined = false;
      if (options_.coalesce) {
        for (std::size_t rank = 0; rank < leaders.size(); ++rank) {
          const std::size_t leader = leaders[rank];
          if (batch[leader].tenant != batch[i].tenant) continue;
          if (Distance(metric, batch[i].embedding,
                       batch[leader].embedding) <=
              tolerance_of(batch[leader].tenant)) {
            leader_of[i] = rank;
            joined = true;
            break;
          }
        }
      }
      if (!joined) {
        leader_of[i] = leaders.size();
        leaders.push_back(i);
      }
    }

    // 4. One grouped sharded search for all leaders — still a single
    //    fused SearchBatch across tenants; isolation is a cache/queue
    //    property, not a compute partition.
    std::vector<std::vector<VectorId>> leader_docs(leaders.size());
    std::vector<std::vector<float>> leader_dists(leaders.size());
    if (!leaders.empty()) {
      Matrix queries(0, index_.dim());
      queries.Reserve(leaders.size());
      for (const std::size_t i : leaders) {
        queries.AppendRow(batch[i].embedding);
      }
      const Nanos search_start = obs::TraceNowNs();
      const auto search_results = index_.SearchBatch(queries, options_.top_k);
      const Nanos search_ns = obs::TraceNowNs() - search_start;
      // The grouped search is shared work too: every miss — leader or
      // coalesced follower — sees the same index-search span.
      for (const std::size_t i : misses) {
        obs::EmitChildSpan(batch[i].trace, obs::TraceOp::kIndexSearch,
                           search_start, search_ns);
      }
      for (std::size_t rank = 0; rank < leaders.size(); ++rank) {
        leader_docs[rank].reserve(search_results[rank].size());
        leader_dists[rank].reserve(search_results[rank].size());
        for (const auto& n : search_results[rank]) {
          leader_docs[rank].push_back(n.id);
          leader_dists[rank].push_back(n.distance);
        }
        const obs::ScopedTraceContext trace_scope(
            batch[leaders[rank]].trace);
        CacheFor(batch[leaders[rank]].tenant)
            .Insert(batch[leaders[rank]].embedding, leader_docs[rank]);
      }
    }

    // 5. Complete misses: leaders own a retrieval, followers share it.
    for (const std::size_t i : misses) {
      const std::size_t rank = leader_of[i];
      results[i].documents = leader_docs[rank];
      results[i].distances = leader_dists[rank];
      results[i].queue_wait_ns = waited[i];
      if (leaders[rank] == i) {
        ++retrieved;
        ++deltas[batch[i].tenant].retrieved;
      } else {
        results[i].coalesced = true;
        ++coalesced;
        ++deltas[batch[i].tenant].coalesced;
      }
      done[i] = true;
      ++completed;
    }

    // 6. Answer-tier maintenance. First audit each stale answer hit
    //    against the fresh evidence its entry now has (the router's
    //    verdict feeds router.* telemetry; conservation already counted
    //    the retrieval-path outcome — stale entries are never served,
    //    exactly the forced-regenerate contract). Then refresh/seed the
    //    tenant's answer entry under the current generation with the
    //    fresh evidence. The driver caches evidence only; the answer
    //    payload belongs to the layer that generates (the pipeline).
    if (answer_reuse) {
      for (const auto& [i, hit] : stale_answers) {
        if (!done[i] || results[i].status != RequestStatus::kOk) continue;
        router_.Route(true, hit.answer.source_docs,
                      hit.answer.source_distances, results[i].documents,
                      results[i].distances);
      }
      for (const std::size_t i : misses) {
        if (results[i].status != RequestStatus::kOk) continue;
        CachedAnswer entry;
        entry.source_docs = results[i].documents;
        entry.source_distances = results[i].distances;
        registry_->AnswerCacheFor(batch[i].tenant)
            .Insert(batch[i].embedding, std::move(entry));
      }
    }
  } catch (...) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (done[i]) continue;
      results[i] = BatchResult{};
      results[i].status = RequestStatus::kInternal;
      results[i].queue_wait_ns = waited[i];
      done[i] = true;
      ++completed;
    }
  }

  kObsHits.Inc(hits);
  kObsAnswerHits.Inc(answer_hits);
  kObsRetrieved.Inc(retrieved);
  kObsCoalesced.Inc(coalesced);
  kObsExpired.Inc(expired);
  kObsMutations.Inc(mutations);
  if (registry_ != nullptr) {
    for (const auto& [tenant, delta] : deltas) {
      registry_->Record(tenant, delta);
    }
    // Every batch entry was admitted at Enqueue; release the inflight
    // slots now that each has completed (whatever the status).
    for (const Pending& entry : batch) {
      registry_->OnDone(entry.tenant);
    }
  }
  {
    std::lock_guard lock(mu_);
    stats_.hits += hits;
    stats_.answer_hits += answer_hits;
    stats_.retrieved += retrieved;
    stats_.coalesced += coalesced;
    stats_.expired += expired;
    stats_.mutations += mutations;
    stats_.completed += completed;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ++tenant_stats_[batch[i].tenant].completed;
    }
    for (const auto& [tenant, delta] : deltas) {
      BatchingDriverStats& tstats = tenant_stats_[tenant];
      tstats.hits += delta.hits;
      tstats.answer_hits += delta.answer_hits;
      tstats.retrieved += delta.retrieved;
      tstats.coalesced += delta.coalesced;
      tstats.expired += delta.expired;
      tstats.mutations += delta.mutations;
    }
  }

  // Deliver completions last (outside mu_ — callbacks must not run
  // under the queue lock).
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i].done(std::move(results[i]));
  }
}

ConcurrentRunResult RunStreamBatched(
    const Workload& workload, const VectorIndex& index,
    ConcurrentProximityCache& cache, const AnswerModel& answer_model,
    std::uint64_t answer_seed, const std::vector<StreamEntry>& stream,
    const Matrix& embeddings, std::size_t threads,
    const BatchingDriverOptions& options,
    BatchingDriverStats* driver_stats, const std::atomic<bool>* stop) {
  if (embeddings.rows() != stream.size()) {
    throw std::invalid_argument(
        "RunStreamBatched: embeddings/stream size mismatch");
  }
  if (threads == 0) {
    throw std::invalid_argument("RunStreamBatched: threads must be > 0");
  }

  const std::vector<double> difficulties =
      MakeDifficultyTable(workload.questions.size(), answer_seed);

  BatchingDriver driver(index, cache, nullptr, options);

  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> processed{0};
  std::atomic<std::size_t> correct{0};
  std::mutex agg_mu;
  LatencyHistogram latencies;
  double relevance_sum = 0.0;
  double misleading_sum = 0.0;

  auto worker = [&] {
    LatencyHistogram local_latencies;
    double local_relevance = 0.0, local_misleading = 0.0;
    std::size_t local_correct = 0;
    for (;;) {
      if (stop != nullptr && stop->load(std::memory_order_relaxed)) break;
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= stream.size()) break;

      Stopwatch watch;
      const std::vector<VectorId> documents =
          driver.Query(embeddings.Row(i));
      local_latencies.Record(watch.ElapsedNanos());

      const Question& question = workload.questions[stream[i].question];
      ContextJudgment judgment;
      {
        const obs::Span prompt_span(obs::Stage::kPrompt);
        judgment = JudgeContext(documents, question, workload);
      }
      local_relevance += judgment.relevance;
      local_misleading += judgment.misleading;
      const obs::Span generate_span(obs::Stage::kGenerate);
      if (answer_model.AnswerCorrectly(judgment,
                                       difficulties[stream[i].question])) {
        ++local_correct;
      }
      processed.fetch_add(1, std::memory_order_relaxed);
    }
    correct.fetch_add(local_correct, std::memory_order_relaxed);
    std::lock_guard lock(agg_mu);
    latencies.Merge(local_latencies);
    relevance_sum += local_relevance;
    misleading_sum += local_misleading;
  };

  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) clients.emplace_back(worker);
  for (auto& t : clients) t.join();
  driver.Shutdown();
  if (driver_stats != nullptr) *driver_stats = driver.stats();

  ConcurrentRunResult result;
  result.cache_stats = cache.stats();
  // An interrupted run (stop flag) reports over the queries it actually
  // served, so partial metrics stay meaningful instead of diluted.
  const std::size_t served = processed.load();
  const double n = static_cast<double>(served);
  result.metrics.queries = served;
  if (served > 0) {
    result.metrics.accuracy = static_cast<double>(correct.load()) / n;
    result.metrics.hit_rate =
        result.cache_stats.lookups > 0
            ? static_cast<double>(result.cache_stats.hits) /
                  static_cast<double>(result.cache_stats.lookups)
            : 0.0;
    result.metrics.mean_latency_ms = latencies.MeanNanos() / kNanosPerMilli;
    result.metrics.p50_latency_ms =
        latencies.QuantileNanos(0.5) / kNanosPerMilli;
    result.metrics.p99_latency_ms =
        latencies.QuantileNanos(0.99) / kNanosPerMilli;
    result.metrics.total_latency_ms =
        latencies.MeanNanos() * n / kNanosPerMilli;
    result.metrics.mean_relevance = relevance_sum / n;
    result.metrics.mean_misleading = misleading_sum / n;
  }
  return result;
}

}  // namespace proximity
