#include "rag/concurrent_driver.h"

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/stats.h"
#include "common/stopwatch.h"
#include "obs/metrics_registry.h"
#include "obs/span.h"

namespace proximity {

namespace {
const obs::CounterHandle kObsQueries("driver.queries");
const obs::GaugeHandle kObsThreads("driver.threads");
// Same split the sequential Retriever reports: a query that piggybacked on
// a coalesced in-flight retrieval counts as a miss (it paid the database
// wait, not the cache fast path).
const obs::HistogramHandle kObsHitLatency("retrieve.hit_ns");
const obs::HistogramHandle kObsMissLatency("retrieve.miss_ns");
}  // namespace

ConcurrentRunResult RunStreamConcurrent(
    const Workload& workload, const VectorIndex& index,
    ConcurrentProximityCache& cache, const AnswerModel& answer_model,
    std::uint64_t answer_seed, const std::vector<StreamEntry>& stream,
    const Matrix& embeddings, std::size_t threads, std::size_t top_k) {
  if (embeddings.rows() != stream.size()) {
    throw std::invalid_argument(
        "RunStreamConcurrent: embeddings/stream size mismatch");
  }
  if (threads == 0) {
    throw std::invalid_argument("RunStreamConcurrent: threads must be > 0");
  }
  if (top_k == 0) {
    throw std::invalid_argument("RunStreamConcurrent: top_k must be > 0");
  }

  const std::vector<double> difficulties =
      MakeDifficultyTable(workload.questions.size(), answer_seed);

  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> correct{0};
  std::mutex agg_mu;
  LatencyHistogram latencies;
  double relevance_sum = 0.0;
  double misleading_sum = 0.0;

  auto worker = [&] {
    LatencyHistogram local_latencies;
    double local_relevance = 0.0, local_misleading = 0.0;
    std::size_t local_correct = 0;
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= stream.size()) break;
      const auto query = embeddings.Row(i);

      Stopwatch watch;
      bool retrieved = false;
      const std::vector<VectorId> documents = cache.FetchOrRetrieve(
          query, [&](std::span<const float> q) {
            retrieved = true;
            std::vector<VectorId> ids;
            for (const auto& n : index.Search(q, top_k)) {
              ids.push_back(n.id);
            }
            return ids;
          });
      const Nanos latency = watch.ElapsedNanos();
      local_latencies.Record(latency);
      kObsQueries.Inc();
      // `retrieved` only marks the flight owner; approximate the coalesced
      // waiters as misses by latency (they waited on the same retrieval).
      if (retrieved) {
        kObsMissLatency.Record(latency);
      } else {
        kObsHitLatency.Record(latency);
      }

      const Question& question = workload.questions[stream[i].question];
      ContextJudgment judgment;
      {
        const obs::Span prompt_span(obs::Stage::kPrompt);
        judgment = JudgeContext(documents, question, workload);
      }
      local_relevance += judgment.relevance;
      local_misleading += judgment.misleading;
      const obs::Span generate_span(obs::Stage::kGenerate);
      if (answer_model.AnswerCorrectly(judgment,
                                       difficulties[stream[i].question])) {
        ++local_correct;
      }
    }
    correct.fetch_add(local_correct, std::memory_order_relaxed);
    std::lock_guard lock(agg_mu);
    latencies.Merge(local_latencies);
    relevance_sum += local_relevance;
    misleading_sum += local_misleading;
  };

  kObsThreads.Set(static_cast<double>(threads));

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  ConcurrentRunResult result;
  result.cache_stats = cache.stats();
  const double n = static_cast<double>(stream.size());
  result.metrics.queries = stream.size();
  if (!stream.empty()) {
    result.metrics.accuracy = static_cast<double>(correct.load()) / n;
    result.metrics.hit_rate =
        n > 0 ? static_cast<double>(result.cache_stats.hits) /
                    static_cast<double>(result.cache_stats.lookups)
              : 0.0;
    result.metrics.mean_latency_ms =
        latencies.MeanNanos() / kNanosPerMilli;
    result.metrics.p50_latency_ms =
        latencies.QuantileNanos(0.5) / kNanosPerMilli;
    result.metrics.p99_latency_ms =
        latencies.QuantileNanos(0.99) / kNanosPerMilli;
    result.metrics.total_latency_ms =
        latencies.MeanNanos() * n / kNanosPerMilli;
    result.metrics.mean_relevance = relevance_sum / n;
    result.metrics.mean_misleading = misleading_sum / n;
  }
  return result;
}

}  // namespace proximity
