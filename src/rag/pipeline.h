// End-to-end RAG pipeline (Figure 1): embed -> retrieve (via Proximity) ->
// prompt -> answer, with the paper's three metrics collected per run.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "embed/hash_embedder.h"
#include "llm/answer_model.h"
#include "rag/retriever.h"
#include "workload/corpus.h"
#include "workload/query_stream.h"

namespace proximity {

struct QueryResult {
  bool correct = false;
  bool cache_hit = false;
  Nanos retrieval_latency_ns = 0;
  ContextJudgment judgment;
};

/// The paper's metric triple (§4.2) plus latency percentiles.
struct RunMetrics {
  std::size_t queries = 0;
  double accuracy = 0.0;
  double hit_rate = 0.0;
  /// Mean retrieval latency in milliseconds.
  double mean_latency_ms = 0.0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double total_latency_ms = 0.0;
  /// Mean relevance/misleading of the served contexts.
  double mean_relevance = 0.0;
  double mean_misleading = 0.0;
};

class RagPipeline {
 public:
  /// References are not owned and must outlive the pipeline.
  RagPipeline(const Workload* workload, const HashEmbedder* embedder,
              Retriever* retriever, AnswerModel answer_model,
              std::uint64_t answer_seed);

  /// Processes one stream entry with a pre-computed query embedding.
  /// `position` indexes the entry within its stream; the answer draw is a
  /// deterministic function of (answer_seed, position), so runs over the
  /// same stream are directly comparable across cache configurations.
  QueryResult ProcessQuery(const StreamEntry& entry,
                           std::span<const float> embedding,
                           std::size_t position);

  /// Embeds on the fly (the examples use this path; benches pre-embed).
  QueryResult ProcessQueryText(const StreamEntry& entry, std::size_t position);

  /// Runs a whole stream with pre-computed embeddings (one row per entry)
  /// and aggregates the metrics.
  RunMetrics RunStream(const std::vector<StreamEntry>& stream,
                       const Matrix& embeddings);

 private:
  const Workload* workload_;
  const HashEmbedder* embedder_;
  Retriever* retriever_;
  AnswerModel answer_model_;
  std::uint64_t answer_seed_;
  /// Stratified per-question difficulty quantiles (see MakeDifficultyTable).
  std::vector<double> difficulties_;
};

}  // namespace proximity
