// End-to-end RAG pipeline (Figure 1): embed -> retrieve (via Proximity) ->
// prompt -> answer, with the paper's three metrics collected per run.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/answer_cache.h"
#include "cache/reuse_router.h"
#include "common/stats.h"
#include "embed/hash_embedder.h"
#include "llm/answer_model.h"
#include "rag/retriever.h"
#include "workload/corpus.h"
#include "workload/query_stream.h"

namespace proximity {

struct QueryResult {
  bool correct = false;
  bool cache_hit = false;
  /// Served (or patched) from the answer cache after the reuse router
  /// approved grounding — no full generation ran.
  bool answer_hit = false;
  Nanos retrieval_latency_ns = 0;
  /// Simulated end-to-end time-to-final-token: retrieval latency plus
  /// the modeled generation cost, overlapped on answer-cache hits (see
  /// AnswerReuseOptions). Equals retrieval_latency_ns when answer
  /// reuse is disabled (generation cost is not modeled there).
  Nanos ttft_ns = 0;
  ContextJudgment judgment;
};

/// The paper's metric triple (§4.2) plus latency percentiles.
struct RunMetrics {
  std::size_t queries = 0;
  double accuracy = 0.0;
  double hit_rate = 0.0;
  /// Fraction of queries served/patched from the answer cache (0 when
  /// answer reuse is disabled).
  double answer_hit_rate = 0.0;
  /// Mean retrieval latency in milliseconds.
  double mean_latency_ms = 0.0;
  /// Mean simulated end-to-end latency (QueryResult::ttft_ns) in ms.
  double mean_ttft_ms = 0.0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double total_latency_ms = 0.0;
  /// Mean relevance/misleading of the served contexts.
  double mean_relevance = 0.0;
  double mean_misleading = 0.0;
};

/// Knobs for the answer-reuse tier (DESIGN.md §15).
struct AnswerReuseOptions {
  /// Overlap retrieval with draft generation on answer-cache hits (the
  /// RAGCache/RAGO idiom): the draft starts on the cached context while
  /// the grounding retrieval runs, and is committed only if the router
  /// approves. Off = the router still runs, but no draft is charged.
  bool overlap = true;
  /// Modeled cost of one full generation (simulated, charged into
  /// ttft_ns). 0 keeps TTFT equal to retrieval latency.
  Nanos generation_cost_ns = 0;
  /// Fraction of generation_cost_ns a draft costs before the router's
  /// verdict lands (prefill + first tokens on the cached context).
  double draft_fraction = 0.25;
};

/// Accounting for the answer-reuse tier; drafts == commits + discards.
struct AnswerReuseStats {
  std::uint64_t lookups = 0;
  std::uint64_t answer_hits = 0;  ///< served + patched
  std::uint64_t served = 0;
  std::uint64_t patched = 0;
  std::uint64_t regenerated = 0;
  std::uint64_t stale_hits = 0;
  std::uint64_t drafts = 0;
  std::uint64_t commits = 0;
  std::uint64_t discards = 0;
};

class RagPipeline {
 public:
  /// References are not owned and must outlive the pipeline.
  RagPipeline(const Workload* workload, const HashEmbedder* embedder,
              Retriever* retriever, AnswerModel answer_model,
              std::uint64_t answer_seed);

  /// Processes one stream entry with a pre-computed query embedding.
  /// `position` indexes the entry within its stream; the answer draw is a
  /// deterministic function of (answer_seed, position), so runs over the
  /// same stream are directly comparable across cache configurations.
  QueryResult ProcessQuery(const StreamEntry& entry,
                           std::span<const float> embedding,
                           std::size_t position);

  /// Embeds on the fly (the examples use this path; benches pre-embed).
  QueryResult ProcessQueryText(const StreamEntry& entry, std::size_t position);

  /// Runs a whole stream with pre-computed embeddings (one row per entry)
  /// and aggregates the metrics.
  RunMetrics RunStream(const std::vector<StreamEntry>& stream,
                       const Matrix& embeddings);

  /// Arms the answer-reuse tier: every query first probes `cache`; on a
  /// τ-hit `router` decides serve / patch / regenerate against the
  /// fresh retrieval (which still runs — it both grounds the verdict
  /// and keeps the retrieval cache warm). Neither pointer is owned;
  /// both must outlive the pipeline. Pass nullptrs to disarm.
  void EnableAnswerReuse(AnswerCache* cache, ReuseRouter* router,
                         AnswerReuseOptions options = {});

  const AnswerReuseStats& answer_stats() const noexcept {
    return reuse_stats_;
  }

 private:
  QueryResult ProcessWithReuse(const StreamEntry& entry,
                               std::span<const float> embedding);

  const Workload* workload_;
  const HashEmbedder* embedder_;
  Retriever* retriever_;
  AnswerModel answer_model_;
  std::uint64_t answer_seed_;
  /// Stratified per-question difficulty quantiles (see MakeDifficultyTable).
  std::vector<double> difficulties_;

  // Answer-reuse tier (unowned; null = disabled).
  AnswerCache* answer_cache_ = nullptr;
  ReuseRouter* reuse_router_ = nullptr;
  AnswerReuseOptions reuse_options_;
  AnswerReuseStats reuse_stats_;
};

}  // namespace proximity
