#include "rag/experiment.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

#include "common/log.h"
#include "common/stats.h"

namespace proximity {

SweepRunner::SweepRunner(SweepConfig config) : config_(std::move(config)) {
  if (config_.capacities.empty() || config_.tolerances.empty()) {
    throw std::invalid_argument("SweepRunner: empty sweep axes");
  }
  if (config_.num_seeds == 0) {
    throw std::invalid_argument("SweepRunner: num_seeds must be > 0");
  }
}

void SweepRunner::Prepare() {
  if (prepared_) return;

  LogInfo("[{}] generating workload (corpus={}, questions={})",
          config_.workload_spec.name, config_.workload_spec.corpus_size,
          config_.workload_spec.num_questions);
  workload_ = BuildWorkload(config_.workload_spec);

  LogInfo("[{}] embedding corpus", config_.workload_spec.name);
  const Matrix corpus_embeddings = embedder_.EmbedBatch(workload_.passages);

  base_index_ = BuildIndex(config_.index_spec, corpus_embeddings);
  if (config_.storage.has_value()) {
    wrapped_index_ = std::make_unique<SlowStorageIndex>(
        std::move(base_index_), *config_.storage, &clock_);
    search_index_ = wrapped_index_.get();
  } else {
    search_index_ = base_index_.get();
  }

  LogInfo("[{}] building {} query streams", config_.workload_spec.name,
          config_.num_seeds);
  streams_.reserve(config_.num_seeds);
  stream_embeddings_.reserve(config_.num_seeds);
  for (std::size_t s = 0; s < config_.num_seeds; ++s) {
    QueryStreamOptions sopts;
    sopts.variants_per_question = config_.variants_per_question;
    sopts.order = config_.stream_order;
    sopts.zipf_length = config_.zipf_length;
    sopts.zipf_exponent = config_.zipf_exponent;
    sopts.seed = config_.base_seed + s;
    streams_.push_back(BuildQueryStream(workload_, sopts));

    std::vector<std::string> texts;
    texts.reserve(streams_.back().size());
    for (const auto& e : streams_.back()) texts.push_back(e.text);
    stream_embeddings_.push_back(embedder_.EmbedBatch(texts));
  }
  prepared_ = true;
}

RunMetrics SweepRunner::RunOne(std::int64_t capacity, double tolerance,
                               std::uint64_t seed) {
  return RunOne(capacity, tolerance, seed, config_.eviction);
}

RunMetrics SweepRunner::RunOne(std::int64_t capacity, double tolerance,
                               std::uint64_t seed, EvictionKind eviction) {
  Prepare();
  const std::size_t seed_slot =
      static_cast<std::size_t>(seed - config_.base_seed);
  if (seed_slot >= streams_.size()) {
    throw std::out_of_range("SweepRunner::RunOne: seed outside prepared set");
  }

  ProximityCacheOptions copts;
  copts.capacity = static_cast<std::size_t>(capacity);
  copts.tolerance = static_cast<float>(tolerance);
  copts.metric = search_index_->metric();
  copts.eviction = eviction;
  copts.seed = seed;
  ProximityCache cache(embedder_.dim(), copts);

  Retriever retriever(search_index_, &cache, &clock_,
                      RetrieverOptions{.top_k = config_.top_k});
  RagPipeline pipeline(&workload_, &embedder_, &retriever,
                       AnswerModel(config_.answer_params), seed);
  return pipeline.RunStream(streams_[seed_slot],
                            stream_embeddings_[seed_slot]);
}

SweepRunner::AdaptiveRunResult SweepRunner::RunAdaptive(
    std::int64_t capacity, const AdaptiveTauOptions& controller_options,
    std::uint64_t seed) {
  Prepare();
  const std::size_t seed_slot =
      static_cast<std::size_t>(seed - config_.base_seed);
  if (seed_slot >= streams_.size()) {
    throw std::out_of_range(
        "SweepRunner::RunAdaptive: seed outside prepared set");
  }
  const auto& stream = streams_[seed_slot];
  const Matrix& embeddings = stream_embeddings_[seed_slot];

  ProximityCacheOptions copts;
  copts.capacity = static_cast<std::size_t>(capacity);
  copts.tolerance = static_cast<float>(controller_options.initial_tau);
  copts.metric = search_index_->metric();
  copts.eviction = config_.eviction;
  copts.seed = seed;
  ProximityCache cache(embedder_.dim(), copts);

  Retriever retriever(search_index_, &cache, &clock_,
                      RetrieverOptions{.top_k = config_.top_k});
  RagPipeline pipeline(&workload_, &embedder_, &retriever,
                       AnswerModel(config_.answer_params), seed);
  AdaptiveTau controller(controller_options);

  AdaptiveRunResult result;
  result.tau_trajectory.reserve(stream.size());
  std::size_t correct = 0, hits = 0;
  LatencyHistogram latencies;
  double relevance_sum = 0.0, misleading_sum = 0.0, tau_sum = 0.0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    cache.set_tolerance(static_cast<float>(controller.tau()));
    tau_sum += controller.tau();
    result.tau_trajectory.push_back(controller.tau());
    const QueryResult r =
        pipeline.ProcessQuery(stream[i], embeddings.Row(i), i);
    controller.Observe(r.cache_hit);
    correct += r.correct ? 1 : 0;
    hits += r.cache_hit ? 1 : 0;
    latencies.Record(r.retrieval_latency_ns);
    relevance_sum += r.judgment.relevance;
    misleading_sum += r.judgment.misleading;
  }

  const double n = static_cast<double>(stream.size());
  result.metrics.queries = stream.size();
  result.metrics.accuracy = static_cast<double>(correct) / n;
  result.metrics.hit_rate = static_cast<double>(hits) / n;
  result.metrics.mean_latency_ms = latencies.MeanNanos() / kNanosPerMilli;
  result.metrics.p50_latency_ms =
      latencies.QuantileNanos(0.5) / kNanosPerMilli;
  result.metrics.p99_latency_ms =
      latencies.QuantileNanos(0.99) / kNanosPerMilli;
  result.metrics.total_latency_ms =
      latencies.MeanNanos() * n / kNanosPerMilli;
  result.metrics.mean_relevance = relevance_sum / n;
  result.metrics.mean_misleading = misleading_sum / n;
  result.final_tau = controller.tau();
  result.mean_tau = tau_sum / n;
  result.adjustments = controller.adjustments();
  return result;
}

std::vector<SweepCell> SweepRunner::Run() {
  Prepare();
  std::vector<SweepCell> cells;
  cells.reserve(config_.capacities.size() * config_.tolerances.size());

  for (std::int64_t c : config_.capacities) {
    for (double tau : config_.tolerances) {
      SweepCell cell;
      cell.capacity = c;
      cell.tolerance = tau;

      StreamingStats acc_stats, hit_stats;
      RunMetrics sum;
      for (std::size_t s = 0; s < config_.num_seeds; ++s) {
        const RunMetrics m = RunOne(c, tau, config_.base_seed + s);
        acc_stats.Add(m.accuracy);
        hit_stats.Add(m.hit_rate);
        sum.queries = m.queries;
        sum.accuracy += m.accuracy;
        sum.hit_rate += m.hit_rate;
        sum.mean_latency_ms += m.mean_latency_ms;
        sum.p50_latency_ms += m.p50_latency_ms;
        sum.p99_latency_ms += m.p99_latency_ms;
        sum.total_latency_ms += m.total_latency_ms;
        sum.mean_relevance += m.mean_relevance;
        sum.mean_misleading += m.mean_misleading;
      }
      const double n = static_cast<double>(config_.num_seeds);
      cell.mean = sum;
      cell.mean.accuracy /= n;
      cell.mean.hit_rate /= n;
      cell.mean.mean_latency_ms /= n;
      cell.mean.p50_latency_ms /= n;
      cell.mean.p99_latency_ms /= n;
      cell.mean.total_latency_ms /= n;
      cell.mean.mean_relevance /= n;
      cell.mean.mean_misleading /= n;
      cell.accuracy_stddev = acc_stats.stddev();
      cell.hit_rate_stddev = hit_stats.stddev();

      LogInfo("c={} tau={}: acc={:.3f} hit={:.3f} lat={:.3f}ms", c, tau,
              cell.mean.accuracy, cell.mean.hit_rate,
              cell.mean.mean_latency_ms);
      cells.push_back(cell);
    }
  }
  return cells;
}

CsvTable SweepRunner::ToCsv(const std::vector<SweepCell>& cells) {
  CsvTable table({"capacity", "tolerance", "accuracy", "accuracy_stddev",
                  "hit_rate", "hit_rate_stddev", "mean_latency_ms",
                  "p50_latency_ms", "p99_latency_ms", "mean_relevance",
                  "mean_misleading"});
  for (const auto& cell : cells) {
    table.AddRow({cell.capacity, cell.tolerance, cell.mean.accuracy,
                  cell.accuracy_stddev, cell.mean.hit_rate,
                  cell.hit_rate_stddev, cell.mean.mean_latency_ms,
                  cell.mean.p50_latency_ms, cell.mean.p99_latency_ms,
                  cell.mean.mean_relevance, cell.mean.mean_misleading});
  }
  return table;
}

CsvTable SweepRunner::LatencyReductionSummary(
    const std::vector<SweepCell>& cells, double max_accuracy_drop) {
  // Baseline per capacity: the τ = 0 cell (no effective caching).
  struct Baseline {
    double latency_ms;
    double accuracy;
  };
  std::map<std::int64_t, Baseline> baseline;
  for (const auto& cell : cells) {
    if (cell.tolerance == 0.0) {
      baseline[cell.capacity] =
          Baseline{cell.mean.mean_latency_ms, cell.mean.accuracy};
    }
  }
  CsvTable table({"capacity", "baseline_latency_ms", "best_latency_ms",
                  "best_tolerance", "latency_reduction_pct",
                  "accuracy_at_best", "baseline_accuracy"});
  for (const auto& [capacity, base] : baseline) {
    double best_ms = std::numeric_limits<double>::infinity();
    double best_tau = 0.0;
    double best_acc = 0.0;
    for (const auto& cell : cells) {
      if (cell.capacity != capacity || cell.tolerance == 0.0) continue;
      // "While maintaining accuracy": ignore configurations whose
      // accuracy fell more than the allowed drop below the baseline.
      if (cell.mean.accuracy < base.accuracy - max_accuracy_drop) continue;
      if (cell.mean.mean_latency_ms < best_ms) {
        best_ms = cell.mean.mean_latency_ms;
        best_tau = cell.tolerance;
        best_acc = cell.mean.accuracy;
      }
    }
    if (!std::isfinite(best_ms)) continue;
    const double reduction =
        base.latency_ms > 0 ? (1.0 - best_ms / base.latency_ms) * 100.0
                            : 0.0;
    table.AddRow({capacity, base.latency_ms, best_ms, best_tau, reduction,
                  best_acc, base.accuracy});
  }
  return table;
}

}  // namespace proximity
