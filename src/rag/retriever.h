// The retriever stage (steps 4-6 of Figure 1) with the Proximity cache
// interposed between the query and the vector database (Figure 2).
#pragma once

#include <span>
#include <vector>

#include "cache/proximity_cache.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "index/vector_index.h"

namespace proximity {

struct RetrieverOptions {
  /// Documents fetched per query (the top-k of the NNS).
  std::size_t top_k = 10;
};

struct RetrievalOutcome {
  std::vector<VectorId> documents;
  /// Distances parallel to `documents`. Empty on a cache hit (the
  /// retrieval cache stores id lists only); populated on database
  /// misses. The reuse router's drift check consumes this profile.
  std::vector<float> distances;
  bool cache_hit = false;
  /// End-to-end retrieval latency: cache lookup plus (on a miss) the
  /// database search, including any simulated storage delay (§4.2
  /// metric iii).
  Nanos latency_ns = 0;
};

/// Aggregated retrieval statistics for one run.
struct RetrieverStats {
  LatencyHistogram all;
  LatencyHistogram hits;
  LatencyHistogram misses;
  std::uint64_t queries = 0;
  std::uint64_t cache_hits = 0;

  double HitRate() const noexcept {
    return queries ? static_cast<double>(cache_hits) /
                         static_cast<double>(queries)
                   : 0.0;
  }
};

class Retriever {
 public:
  /// `cache` may be null (no-cache baseline). `clock` may be null when the
  /// index charges no simulated latency. Neither is owned; both must
  /// outlive the retriever.
  Retriever(const VectorIndex* index, ProximityCache* cache,
            VirtualClock* clock, RetrieverOptions options = {});

  /// Runs Algorithm 1 for one query embedding and times it.
  RetrievalOutcome Retrieve(std::span<const float> query);

  const RetrieverStats& stats() const noexcept { return stats_; }
  void ResetStats() noexcept { stats_ = {}; }

  const VectorIndex& index() const noexcept { return *index_; }
  ProximityCache* cache() noexcept { return cache_; }
  std::size_t top_k() const noexcept { return options_.top_k; }

 private:
  const VectorIndex* index_;
  ProximityCache* cache_;
  VirtualClock* clock_;
  RetrieverOptions options_;
  RetrieverStats stats_;
};

}  // namespace proximity
