// Cache warm-up: pre-populate a Proximity cache from historical queries.
//
// A freshly deployed (or restarted without a snapshot) cache serves its
// first queries at full database price. When a query history is
// available, we can do better: cluster the historical embeddings with
// k-means, retrieve once per centroid, and seed the cache with
// (centroid -> documents) entries. Any future query within τ of a warm
// centroid hits immediately. This is the similarity-caching analogue of
// classic cache priming, and a concrete instance of the paper's remark
// that tuning should exploit "workload characteristics" (§4.3.4).
#pragma once

#include <cstddef>
#include <functional>

#include "cache/proximity_cache.h"
#include "vecmath/matrix.h"

namespace proximity {

struct WarmupOptions {
  /// Number of centroid entries to seed; clamped to the cache capacity.
  std::size_t budget = 32;
  std::uint64_t seed = 42;
  std::size_t kmeans_iterations = 15;
};

struct WarmupReport {
  std::size_t entries_seeded = 0;
  std::size_t retrievals_performed = 0;
  /// Fraction of historical queries within the cache tolerance of some
  /// seeded centroid — an a-priori estimate of the warm hit rate.
  double estimated_coverage = 0.0;
};

/// Seeds `cache` with up to `options.budget` entries derived from
/// `history` (one historical query embedding per row). `retrieve` is the
/// database lookup used to fill each entry's documents.
WarmupReport WarmCacheFromHistory(
    ProximityCache& cache, const Matrix& history,
    const std::function<std::vector<VectorId>(std::span<const float>)>&
        retrieve,
    const WarmupOptions& options = {});

}  // namespace proximity
