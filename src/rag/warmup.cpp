#include "rag/warmup.h"

#include <algorithm>
#include <stdexcept>

#include "index/kmeans.h"
#include "vecmath/kernels.h"

namespace proximity {

WarmupReport WarmCacheFromHistory(
    ProximityCache& cache, const Matrix& history,
    const std::function<std::vector<VectorId>(std::span<const float>)>&
        retrieve,
    const WarmupOptions& options) {
  WarmupReport report;
  if (history.rows() == 0) return report;
  if (history.dim() != cache.dim()) {
    throw std::invalid_argument(
        "WarmCacheFromHistory: history dimension mismatch");
  }

  const std::size_t budget =
      std::min(options.budget, cache.capacity());
  if (budget == 0) return report;

  KMeansOptions kopts;
  kopts.seed = options.seed;
  kopts.max_iterations = options.kmeans_iterations;
  const KMeansResult clusters = RunKMeans(history, budget, kopts);

  // Seed the cache: one retrieval per centroid. Centroids are visited in
  // descending cluster size so that, if the budget exceeds capacity, the
  // high-traffic neighborhoods win the eviction race.
  std::vector<std::size_t> cluster_size(clusters.centroids.rows(), 0);
  for (std::uint32_t a : clusters.assignment) ++cluster_size[a];
  std::vector<std::size_t> order(clusters.centroids.rows());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return cluster_size[a] > cluster_size[b];
  });

  for (std::size_t c : order) {
    if (cluster_size[c] == 0) continue;  // re-seeded empty cluster
    const auto centroid = clusters.centroids.Row(c);
    cache.Insert(centroid, retrieve(centroid));
    ++report.retrievals_performed;
    ++report.entries_seeded;
  }

  // Coverage estimate: historical queries within tolerance of their own
  // centroid (lower bound: the nearest seeded key can only be closer).
  std::size_t covered = 0;
  for (std::size_t i = 0; i < history.rows(); ++i) {
    const auto centroid =
        clusters.centroids.Row(clusters.assignment[i]);
    const float d = Distance(cache.metric(), history.Row(i), centroid);
    if (d <= cache.tolerance()) ++covered;
  }
  report.estimated_coverage =
      static_cast<double>(covered) / static_cast<double>(history.rows());
  return report;
}

}  // namespace proximity
