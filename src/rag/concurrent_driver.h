// Multi-threaded stream execution over a shared ConcurrentProximityCache.
//
// Models a deployment where many users query the RAG service at once:
// worker threads race on the shared cache, and similar in-flight queries
// coalesce onto one database retrieval (see cache/concurrent_cache.h).
#pragma once

#include <cstdint>
#include <vector>

#include "cache/concurrent_cache.h"
#include "embed/hash_embedder.h"
#include "index/vector_index.h"
#include "llm/answer_model.h"
#include "rag/pipeline.h"
#include "workload/query_stream.h"

namespace proximity {

struct ConcurrentRunResult {
  RunMetrics metrics;
  ConcurrentCacheStats cache_stats;
};

/// Processes `stream` with `threads` workers sharing `cache` over `index`.
/// Entries are claimed from a shared atomic cursor, so the interleaving —
/// and therefore the exact hit rate — is scheduling-dependent; the
/// invariants (hit + retrieved + coalesced == queries, accuracy bounds)
/// are not. Embeddings must hold one row per stream entry.
ConcurrentRunResult RunStreamConcurrent(
    const Workload& workload, const VectorIndex& index,
    ConcurrentProximityCache& cache, const AnswerModel& answer_model,
    std::uint64_t answer_seed, const std::vector<StreamEntry>& stream,
    const Matrix& embeddings, std::size_t threads, std::size_t top_k = 10);

}  // namespace proximity
