#include "rag/pipeline.h"

#include <stdexcept>

#include "common/rng.h"
#include "obs/span.h"

namespace proximity {

RagPipeline::RagPipeline(const Workload* workload,
                         const HashEmbedder* embedder, Retriever* retriever,
                         AnswerModel answer_model, std::uint64_t answer_seed)
    : workload_(workload),
      embedder_(embedder),
      retriever_(retriever),
      answer_model_(answer_model),
      answer_seed_(answer_seed) {
  if (workload_ == nullptr || embedder_ == nullptr || retriever_ == nullptr) {
    throw std::invalid_argument("RagPipeline: null dependency");
  }
  difficulties_ =
      MakeDifficultyTable(workload_->questions.size(), answer_seed);
}

QueryResult RagPipeline::ProcessQuery(const StreamEntry& entry,
                                      std::span<const float> embedding,
                                      std::size_t position) {
  if (entry.question >= workload_->questions.size()) {
    throw std::out_of_range("RagPipeline: bad question index");
  }
  QueryResult result;
  auto outcome = retriever_->Retrieve(embedding);
  result.cache_hit = outcome.cache_hit;
  result.retrieval_latency_ns = outcome.latency_ns;

  const Question& question = workload_->questions[entry.question];
  {
    const obs::Span prompt_span(obs::Stage::kPrompt);
    result.judgment = JudgeContext(outcome.documents, question, *workload_);
  }

  // Deterministic LLM behaviour: the outcome depends on the question's
  // fixed difficulty quantile and the served context only, never on the
  // stream position — two runs over the same stream differ exactly where
  // the served context differs.
  (void)position;
  {
    const obs::Span generate_span(obs::Stage::kGenerate);
    result.correct = answer_model_.AnswerCorrectly(
        result.judgment, difficulties_[entry.question]);
  }
  return result;
}

QueryResult RagPipeline::ProcessQueryText(const StreamEntry& entry,
                                          std::size_t position) {
  std::vector<float> embedding;
  {
    const obs::Span embed_span(obs::Stage::kEmbed);
    embedding = embedder_->Embed(entry.text);
  }
  return ProcessQuery(entry, embedding, position);
}

RunMetrics RagPipeline::RunStream(const std::vector<StreamEntry>& stream,
                                  const Matrix& embeddings) {
  if (embeddings.rows() != stream.size()) {
    throw std::invalid_argument(
        "RagPipeline::RunStream: embeddings/stream size mismatch");
  }
  RunMetrics metrics;
  metrics.queries = stream.size();
  if (stream.empty()) return metrics;

  std::size_t correct = 0;
  std::size_t hits = 0;
  LatencyHistogram latencies;
  double relevance_sum = 0.0;
  double misleading_sum = 0.0;
  double total_latency_ns = 0.0;

  for (std::size_t i = 0; i < stream.size(); ++i) {
    const QueryResult r = ProcessQuery(stream[i], embeddings.Row(i), i);
    correct += r.correct ? 1 : 0;
    hits += r.cache_hit ? 1 : 0;
    latencies.Record(r.retrieval_latency_ns);
    total_latency_ns += static_cast<double>(r.retrieval_latency_ns);
    relevance_sum += r.judgment.relevance;
    misleading_sum += r.judgment.misleading;
  }

  const double n = static_cast<double>(stream.size());
  metrics.accuracy = static_cast<double>(correct) / n;
  metrics.hit_rate = static_cast<double>(hits) / n;
  metrics.mean_latency_ms = latencies.MeanNanos() / kNanosPerMilli;
  metrics.p50_latency_ms = latencies.QuantileNanos(0.5) / kNanosPerMilli;
  metrics.p99_latency_ms = latencies.QuantileNanos(0.99) / kNanosPerMilli;
  metrics.total_latency_ms = total_latency_ns / kNanosPerMilli;
  metrics.mean_relevance = relevance_sum / n;
  metrics.mean_misleading = misleading_sum / n;
  return metrics;
}

}  // namespace proximity
