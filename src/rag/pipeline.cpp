#include "rag/pipeline.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/rng.h"
#include "obs/metrics_registry.h"
#include "obs/span.h"

namespace proximity {

namespace {
// Draft accounting for the retrieval/generation overlap (DESIGN.md
// §15): every draft started on a cached context ends as exactly one
// commit (router approved) or one discard (router regenerated), so
// overlap.drafts == overlap.commits + overlap.discards at all times.
const obs::CounterHandle kObsDrafts("overlap.drafts");
const obs::CounterHandle kObsCommits("overlap.commits");
const obs::CounterHandle kObsDiscards("overlap.discards");
}  // namespace

RagPipeline::RagPipeline(const Workload* workload,
                         const HashEmbedder* embedder, Retriever* retriever,
                         AnswerModel answer_model, std::uint64_t answer_seed)
    : workload_(workload),
      embedder_(embedder),
      retriever_(retriever),
      answer_model_(answer_model),
      answer_seed_(answer_seed) {
  if (workload_ == nullptr || embedder_ == nullptr || retriever_ == nullptr) {
    throw std::invalid_argument("RagPipeline: null dependency");
  }
  difficulties_ =
      MakeDifficultyTable(workload_->questions.size(), answer_seed);
}

QueryResult RagPipeline::ProcessQuery(const StreamEntry& entry,
                                      std::span<const float> embedding,
                                      std::size_t position) {
  if (entry.question >= workload_->questions.size()) {
    throw std::out_of_range("RagPipeline: bad question index");
  }
  // Deterministic LLM behaviour: the outcome depends on the question's
  // fixed difficulty quantile and the served context only, never on the
  // stream position — two runs over the same stream differ exactly where
  // the served context differs.
  (void)position;
  if (answer_cache_ != nullptr) return ProcessWithReuse(entry, embedding);

  QueryResult result;
  auto outcome = retriever_->Retrieve(embedding);
  result.cache_hit = outcome.cache_hit;
  result.retrieval_latency_ns = outcome.latency_ns;
  // Without answer reuse no generation cost is modeled: TTFT collapses
  // to the retrieval latency (the paper's §4.2 latency metric).
  result.ttft_ns = outcome.latency_ns;

  const Question& question = workload_->questions[entry.question];
  {
    const obs::Span prompt_span(obs::Stage::kPrompt);
    result.judgment = JudgeContext(outcome.documents, question, *workload_);
  }
  {
    const obs::Span generate_span(obs::Stage::kGenerate);
    result.correct = answer_model_.AnswerCorrectly(
        result.judgment, difficulties_[entry.question]);
  }
  return result;
}

void RagPipeline::EnableAnswerReuse(AnswerCache* cache, ReuseRouter* router,
                                    AnswerReuseOptions options) {
  if ((cache == nullptr) != (router == nullptr)) {
    throw std::invalid_argument(
        "RagPipeline: answer cache and reuse router come as a pair");
  }
  if (options.draft_fraction < 0.0 || options.draft_fraction > 1.0) {
    throw std::invalid_argument(
        "RagPipeline: draft_fraction must be in [0, 1]");
  }
  if (cache != nullptr && cache->dim() != retriever_->index().dim()) {
    throw std::invalid_argument(
        "RagPipeline: answer cache dimension differs from index");
  }
  if (cache != nullptr && cache->metric() != retriever_->index().metric()) {
    // Same §3.1 contract as the retrieval cache: proximity is only
    // meaningful in the index's own distance function.
    throw std::invalid_argument(
        "RagPipeline: answer cache metric differs from index");
  }
  answer_cache_ = cache;
  reuse_router_ = router;
  reuse_options_ = options;
}

QueryResult RagPipeline::ProcessWithReuse(const StreamEntry& entry,
                                          std::span<const float> embedding) {
  QueryResult result;
  const Question& question = workload_->questions[entry.question];
  const double difficulty = difficulties_[entry.question];
  const Nanos gen_cost = reuse_options_.generation_cost_ns;
  const Nanos draft_cost = static_cast<Nanos>(
      static_cast<double>(gen_cost) * reuse_options_.draft_fraction);

  ++reuse_stats_.lookups;
  const AnswerCache::LookupResult probe = answer_cache_->Lookup(embedding);
  // Copied out: a refresh Insert below may overwrite the probed slot.
  CachedAnswer cached;
  if (probe.hit) cached = *probe.answer;
  if (probe.hit && probe.stale) ++reuse_stats_.stale_hits;

  // The overlap idiom (RAGCache/RAGO): on a non-stale hit the draft
  // generation starts on the cached context *while* the grounding
  // retrieval runs; the two race, and the router's verdict decides
  // whether the draft commits. Stale hits skip the draft — the
  // generation stamp already rules reuse out, so a draft would be a
  // guaranteed discard.
  const bool drafted = probe.hit && !probe.stale && reuse_options_.overlap;
  if (drafted) {
    ++reuse_stats_.drafts;
    kObsDrafts.Inc();
  }

  // The fresh retrieval always runs: it grounds the router's verdict
  // and keeps the retrieval cache warm for neighbouring queries.
  auto outcome = retriever_->Retrieve(embedding);
  result.cache_hit = outcome.cache_hit;
  result.retrieval_latency_ns = outcome.latency_ns;

  if (!probe.hit) {
    // Plain miss: full path, then populate the answer tier.
    {
      const obs::Span prompt_span(obs::Stage::kPrompt);
      result.judgment = JudgeContext(outcome.documents, question, *workload_);
    }
    {
      const obs::Span generate_span(obs::Stage::kGenerate);
      result.correct = answer_model_.AnswerCorrectly(result.judgment,
                                                     difficulty);
    }
    result.ttft_ns = outcome.latency_ns + gen_cost;
    CachedAnswer fresh{outcome.documents, outcome.distances,
                       result.judgment.relevance, result.judgment.misleading,
                       result.correct};
    answer_cache_->Insert(embedding, std::move(fresh));
    return result;
  }

  const ReuseVerdict verdict = reuse_router_->Route(
      probe.stale, cached.source_docs, cached.source_distances,
      outcome.documents, outcome.distances);

  switch (verdict.decision) {
    case ReuseDecision::kServe: {
      // Evidence still grounded: the draft (or, without overlap, the
      // cached answer verbatim) is committed with no full generation.
      result.judgment =
          ContextJudgment{cached.relevance, cached.misleading};
      result.correct = cached.correct;
      result.answer_hit = true;
      ++reuse_stats_.answer_hits;
      ++reuse_stats_.served;
      if (drafted) {
        ++reuse_stats_.commits;
        kObsCommits.Inc();
      }
      // Retrieval and draft overlapped: TTFT is the slower of the two.
      result.ttft_ns = drafted
                           ? std::max(outcome.latency_ns, draft_cost)
                           : outcome.latency_ns;
      break;
    }
    case ReuseDecision::kPatch: {
      // Partial overlap: keep the draft but splice in the fresh
      // context — the answer model re-judges the fresh evidence, so
      // correctness tracks today's corpus while the full generation
      // cost is still avoided.
      {
        const obs::Span prompt_span(obs::Stage::kPrompt);
        result.judgment =
            JudgeContext(outcome.documents, question, *workload_);
      }
      result.correct =
          answer_model_.AnswerCorrectly(result.judgment, difficulty);
      result.answer_hit = true;
      ++reuse_stats_.answer_hits;
      ++reuse_stats_.patched;
      if (drafted) {
        ++reuse_stats_.commits;
        kObsCommits.Inc();
      }
      // With overlap the splice rides the draft; without, the patch
      // tokens are charged serially after retrieval.
      result.ttft_ns = drafted
                           ? std::max(outcome.latency_ns, draft_cost)
                           : outcome.latency_ns + draft_cost;
      CachedAnswer fresh{outcome.documents, outcome.distances,
                         result.judgment.relevance,
                         result.judgment.misleading, result.correct};
      answer_cache_->Insert(embedding, std::move(fresh));
      break;
    }
    case ReuseDecision::kRegenerate: {
      // Ungrounded (or stale): the draft is wasted work and the full
      // path runs, refreshing the entry under the current generation.
      if (drafted) {
        ++reuse_stats_.discards;
        kObsDiscards.Inc();
      }
      ++reuse_stats_.regenerated;
      {
        const obs::Span prompt_span(obs::Stage::kPrompt);
        result.judgment =
            JudgeContext(outcome.documents, question, *workload_);
      }
      {
        const obs::Span generate_span(obs::Stage::kGenerate);
        result.correct =
            answer_model_.AnswerCorrectly(result.judgment, difficulty);
      }
      result.ttft_ns = outcome.latency_ns + gen_cost;
      CachedAnswer fresh{outcome.documents, outcome.distances,
                         result.judgment.relevance,
                         result.judgment.misleading, result.correct};
      answer_cache_->Insert(embedding, std::move(fresh));
      break;
    }
  }
  return result;
}

QueryResult RagPipeline::ProcessQueryText(const StreamEntry& entry,
                                          std::size_t position) {
  std::vector<float> embedding;
  {
    const obs::Span embed_span(obs::Stage::kEmbed);
    embedding = embedder_->Embed(entry.text);
  }
  return ProcessQuery(entry, embedding, position);
}

RunMetrics RagPipeline::RunStream(const std::vector<StreamEntry>& stream,
                                  const Matrix& embeddings) {
  if (embeddings.rows() != stream.size()) {
    throw std::invalid_argument(
        "RagPipeline::RunStream: embeddings/stream size mismatch");
  }
  RunMetrics metrics;
  metrics.queries = stream.size();
  if (stream.empty()) return metrics;

  std::size_t correct = 0;
  std::size_t hits = 0;
  std::size_t answer_hits = 0;
  LatencyHistogram latencies;
  double relevance_sum = 0.0;
  double misleading_sum = 0.0;
  double total_latency_ns = 0.0;
  double total_ttft_ns = 0.0;

  for (std::size_t i = 0; i < stream.size(); ++i) {
    const QueryResult r = ProcessQuery(stream[i], embeddings.Row(i), i);
    correct += r.correct ? 1 : 0;
    hits += r.cache_hit ? 1 : 0;
    answer_hits += r.answer_hit ? 1 : 0;
    latencies.Record(r.retrieval_latency_ns);
    total_latency_ns += static_cast<double>(r.retrieval_latency_ns);
    total_ttft_ns += static_cast<double>(r.ttft_ns);
    relevance_sum += r.judgment.relevance;
    misleading_sum += r.judgment.misleading;
  }

  const double n = static_cast<double>(stream.size());
  metrics.accuracy = static_cast<double>(correct) / n;
  metrics.hit_rate = static_cast<double>(hits) / n;
  metrics.answer_hit_rate = static_cast<double>(answer_hits) / n;
  metrics.mean_ttft_ms = total_ttft_ns / n / kNanosPerMilli;
  metrics.mean_latency_ms = latencies.MeanNanos() / kNanosPerMilli;
  metrics.p50_latency_ms = latencies.QuantileNanos(0.5) / kNanosPerMilli;
  metrics.p99_latency_ms = latencies.QuantileNanos(0.99) / kNanosPerMilli;
  metrics.total_latency_ms = total_latency_ns / kNanosPerMilli;
  metrics.mean_relevance = relevance_sum / n;
  metrics.mean_misleading = misleading_sum / n;
  return metrics;
}

}  // namespace proximity
