#include "rag/retriever.h"

#include <stdexcept>

#include "obs/metrics_registry.h"
#include "obs/span.h"

namespace proximity {

namespace {
const obs::CounterHandle kObsQueries("retriever.queries");
const obs::CounterHandle kObsHits("retriever.hits");
// The paper's Figure-5 contrast: retrieval latency split by whether the
// query was served from the cache or fell through to the database (both
// include any simulated storage delay charged on the virtual clock).
const obs::HistogramHandle kObsHitLatency("retrieve.hit_ns");
const obs::HistogramHandle kObsMissLatency("retrieve.miss_ns");
}  // namespace

Retriever::Retriever(const VectorIndex* index, ProximityCache* cache,
                     VirtualClock* clock, RetrieverOptions options)
    : index_(index), cache_(cache), clock_(clock), options_(options) {
  if (index_ == nullptr) {
    throw std::invalid_argument("Retriever: index is null");
  }
  if (options_.top_k == 0) {
    throw std::invalid_argument("Retriever: top_k must be > 0");
  }
  if (cache_ != nullptr && cache_->metric() != index_->metric()) {
    // §3.1: the cache must use the same distance function as the database.
    throw std::invalid_argument(
        "Retriever: cache metric differs from index metric");
  }
  if (cache_ != nullptr && cache_->dim() != index_->dim()) {
    throw std::invalid_argument(
        "Retriever: cache dimension differs from index dimension");
  }
}

RetrievalOutcome Retriever::Retrieve(std::span<const float> query) {
  RetrievalOutcome outcome;
  const Nanos virtual_before = clock_ != nullptr ? clock_->Now() : 0;
  Stopwatch watch;

  if (cache_ != nullptr) {
    ProximityCache::LookupResult cached;
    {
      const obs::Span lookup_span(obs::Stage::kCacheLookup);
      cached = cache_->Lookup(query);
    }
    if (cached.hit) {
      outcome.documents.assign(cached.documents.begin(),
                               cached.documents.end());
      outcome.cache_hit = true;
    } else {
      auto neighbors = index_->Search(query, options_.top_k);
      outcome.documents.reserve(neighbors.size());
      outcome.distances.reserve(neighbors.size());
      for (const auto& n : neighbors) {
        outcome.documents.push_back(n.id);
        outcome.distances.push_back(n.distance);
      }
      cache_->Insert(query, outcome.documents);
    }
  } else {
    auto neighbors = index_->Search(query, options_.top_k);
    outcome.documents.reserve(neighbors.size());
    outcome.distances.reserve(neighbors.size());
    for (const auto& n : neighbors) {
      outcome.documents.push_back(n.id);
      outcome.distances.push_back(n.distance);
    }
  }

  const Nanos virtual_delta =
      (clock_ != nullptr ? clock_->Now() : 0) - virtual_before;
  outcome.latency_ns = watch.ElapsedNanos() + virtual_delta;

  ++stats_.queries;
  stats_.all.Record(outcome.latency_ns);
  kObsQueries.Inc();
  if (outcome.cache_hit) {
    ++stats_.cache_hits;
    stats_.hits.Record(outcome.latency_ns);
    kObsHits.Inc();
    kObsHitLatency.Record(outcome.latency_ns);
  } else {
    stats_.misses.Record(outcome.latency_ns);
    kObsMissLatency.Record(outcome.latency_ns);
  }
  return outcome;
}

}  // namespace proximity
