// Reproduction verdicts: check measured Figure-3 sweeps against the
// paper's anchor numbers.
//
// Each claim from §4.3 is encoded as a predicate over the sweep grid
// with a tolerance band. The fig3 benches print the verdict table after
// their CSV, so a reproduction run is self-checking: "who wins, by
// roughly what factor, and where the crossovers fall" is asserted, not
// eyeballed.
#pragma once

#include <string>
#include <vector>

#include "rag/experiment.h"

namespace proximity {

enum class ClaimStatus {
  kReproduced,  // inside the tolerance band
  kPartial,     // right direction/shape, magnitude off
  kDeviation,   // wrong direction or missing
};

std::string_view ClaimStatusName(ClaimStatus status) noexcept;

struct ClaimCheck {
  std::string id;           // e.g. "mmlu-acc-range"
  std::string description;  // the paper's claim, quoted/condensed
  std::string paper;        // the paper's value(s)
  std::string measured;     // what this run produced
  ClaimStatus status = ClaimStatus::kDeviation;
};

/// Evaluates the §4.3 MMLU-row claims against a measured sweep
/// (expects the standard c x tau grid; missing cells degrade the
/// affected claims to kDeviation with "cell missing").
std::vector<ClaimCheck> CheckMmluClaims(const std::vector<SweepCell>& cells);

/// Evaluates the §4.3 MedRAG-row claims.
std::vector<ClaimCheck> CheckMedragClaims(
    const std::vector<SweepCell>& cells);

/// Renders "[STATUS] id: description (paper ... / measured ...)" lines.
std::string RenderClaims(const std::vector<ClaimCheck>& claims);

}  // namespace proximity
