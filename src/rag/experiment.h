// The Figure-3 sweep harness: (cache capacity c) x (tolerance τ) x seeds.
//
// §4.3: "We evaluate these metrics across different cache capacities
// c ∈ {10, 50, 100, 200, 300} … tolerance levels τ ∈ {0, 0.5, 1, 2, 5, 10}
// for MMLU and τ ∈ {0, 2, 5, 10} for MedRAG … we run each experiment five
// times and with different random seeds. We average all results."
//
// The corpus, its embeddings, and the vector index are built once and
// shared across all grid cells; each (c, τ, seed) cell gets a fresh cache
// and a freshly shuffled query stream.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cache/adaptive_tau.h"
#include "common/csv.h"
#include "index/index_factory.h"
#include "index/slow_storage_index.h"
#include "llm/answer_model.h"
#include "rag/pipeline.h"
#include "workload/query_stream.h"

namespace proximity {

struct SweepConfig {
  WorkloadSpec workload_spec;
  IndexSpec index_spec;
  AnswerModelParams answer_params;

  std::vector<std::int64_t> capacities = {10, 50, 100, 200, 300};
  std::vector<double> tolerances = {0, 0.5, 1, 2, 5, 10};
  std::size_t num_seeds = 5;
  std::uint64_t base_seed = 1;

  std::size_t top_k = 10;
  std::size_t variants_per_question = 4;
  StreamOrder stream_order = StreamOrder::kShuffled;
  /// Stream length and skew for StreamOrder::kZipf.
  std::size_t zipf_length = 2000;
  double zipf_exponent = 1.0;
  EvictionKind eviction = EvictionKind::kFifo;

  /// When set, the index is wrapped in SlowStorageIndex with this model
  /// (the DiskANN-style experiment).
  std::optional<StorageModel> storage;
};

/// One grid cell, averaged over seeds.
struct SweepCell {
  std::int64_t capacity = 0;
  double tolerance = 0.0;
  RunMetrics mean;
  double accuracy_stddev = 0.0;
  double hit_rate_stddev = 0.0;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepConfig config);

  /// Builds the workload, embeds the corpus and streams, and constructs
  /// the index. Called lazily by Run() if needed.
  void Prepare();

  /// Runs the full grid and returns one averaged cell per (c, τ).
  std::vector<SweepCell> Run();

  /// Runs a single configuration (fresh cache) for one seed.
  RunMetrics RunOne(std::int64_t capacity, double tolerance,
                    std::uint64_t seed);

  /// RunOne with an eviction-policy override (the §3.2.2 ablation).
  RunMetrics RunOne(std::int64_t capacity, double tolerance,
                    std::uint64_t seed, EvictionKind eviction);

  struct AdaptiveRunResult {
    RunMetrics metrics;
    double final_tau = 0.0;
    double mean_tau = 0.0;
    std::uint64_t adjustments = 0;
    /// τ as seen by query i (controller value applied before the lookup);
    /// one entry per stream position — the run report's τ trajectory.
    std::vector<double> tau_trajectory;
  };

  /// Runs one stream with the adaptive-τ controller (§3.2.3 future work):
  /// before each query the cache tolerance is set to the controller's
  /// current τ, and the hit/miss outcome is fed back.
  AdaptiveRunResult RunAdaptive(std::int64_t capacity,
                                const AdaptiveTauOptions& controller_options,
                                std::uint64_t seed);

  /// CSV with one row per cell: the three Figure-3 panels as columns.
  static CsvTable ToCsv(const std::vector<SweepCell>& cells);

  /// Headline summary (§1/§4.3.3): per-capacity latency reduction of the
  /// fastest τ > 0 cell relative to the τ = 0 baseline, considering only
  /// cells that *maintain accuracy* — within `max_accuracy_drop` of the
  /// τ = 0 accuracy (the paper's claim is "reduces retrieval latency …
  /// while maintaining accuracy", §1).
  static CsvTable LatencyReductionSummary(const std::vector<SweepCell>& cells,
                                          double max_accuracy_drop = 0.01);

  const Workload& workload() const { return workload_; }
  const VectorIndex& index() const { return *search_index_; }
  const HashEmbedder& embedder() const { return embedder_; }

 private:
  SweepConfig config_;
  bool prepared_ = false;

  HashEmbedder embedder_;
  Workload workload_;
  VirtualClock clock_;
  std::unique_ptr<VectorIndex> base_index_;
  std::unique_ptr<VectorIndex> wrapped_index_;
  VectorIndex* search_index_ = nullptr;

  // Per-seed streams and their embeddings, precomputed in Prepare().
  std::vector<std::vector<StreamEntry>> streams_;
  std::vector<Matrix> stream_embeddings_;
};

}  // namespace proximity
