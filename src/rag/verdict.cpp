#include "rag/verdict.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <optional>

namespace proximity {

std::string_view ClaimStatusName(ClaimStatus status) noexcept {
  switch (status) {
    case ClaimStatus::kReproduced:
      return "REPRODUCED";
    case ClaimStatus::kPartial:
      return "PARTIAL";
    case ClaimStatus::kDeviation:
      return "DEVIATION";
  }
  return "?";
}

namespace {

std::string Pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", v * 100.0);
  return buf;
}

class Grid {
 public:
  explicit Grid(const std::vector<SweepCell>& cells) : cells_(cells) {}

  std::optional<SweepCell> At(std::int64_t c, double tau) const {
    for (const auto& cell : cells_) {
      if (cell.capacity == c && cell.tolerance == tau) return cell;
    }
    return std::nullopt;
  }

  /// Largest capacity present in the grid.
  std::int64_t MaxCapacity() const {
    std::int64_t best = 0;
    for (const auto& cell : cells_) best = std::max(best, cell.capacity);
    return best;
  }

  std::pair<double, double> AccuracyRange() const {
    double lo = std::numeric_limits<double>::infinity(), hi = -lo;
    for (const auto& cell : cells_) {
      lo = std::min(lo, cell.mean.accuracy);
      hi = std::max(hi, cell.mean.accuracy);
    }
    return {lo, hi};
  }

  bool empty() const { return cells_.empty(); }

 private:
  const std::vector<SweepCell>& cells_;
};

ClaimCheck Missing(std::string id, std::string description,
                   std::string paper) {
  return ClaimCheck{.id = std::move(id),
                    .description = std::move(description),
                    .paper = std::move(paper),
                    .measured = "cell missing from sweep",
                    .status = ClaimStatus::kDeviation};
}

/// Classifies a scalar against a target band (reproduced) and a wider
/// sanity band (partial).
ClaimStatus Band(double v, double lo, double hi, double slack) {
  if (v >= lo && v <= hi) return ClaimStatus::kReproduced;
  if (v >= lo - slack && v <= hi + slack) return ClaimStatus::kPartial;
  return ClaimStatus::kDeviation;
}

/// Best latency reduction across capacities among cells that maintain
/// accuracy (same guard as SweepRunner::LatencyReductionSummary).
std::optional<double> BestGuardedReduction(
    const std::vector<SweepCell>& cells) {
  std::optional<double> best;
  for (const auto& base : cells) {
    if (base.tolerance != 0.0) continue;
    for (const auto& cell : cells) {
      if (cell.capacity != base.capacity || cell.tolerance == 0.0) continue;
      if (cell.mean.accuracy < base.mean.accuracy - 0.01) continue;
      if (base.mean.mean_latency_ms <= 0) continue;
      const double reduction =
          1.0 - cell.mean.mean_latency_ms / base.mean.mean_latency_ms;
      if (!best || reduction > *best) best = reduction;
    }
  }
  return best;
}

}  // namespace

std::vector<ClaimCheck> CheckMmluClaims(const std::vector<SweepCell>& cells) {
  std::vector<ClaimCheck> claims;
  Grid grid(cells);
  if (grid.empty()) {
    claims.push_back(Missing("mmlu-empty", "sweep produced no cells", "-"));
    return claims;
  }
  const std::int64_t cmax = grid.MaxCapacity();

  {  // Accuracy stays in a narrow band across the grid (§4.3.1).
    const auto [lo, hi] = grid.AccuracyRange();
    ClaimCheck c;
    c.id = "mmlu-acc-range";
    c.description = "accuracy relatively stable across (c, tau)";
    c.paper = "47.9% - 50.2%";
    c.measured = Pct(lo) + " - " + Pct(hi);
    const double spread = hi - lo;
    c.status = (lo > 0.44 && hi < 0.54 && spread < 0.06)
                   ? ClaimStatus::kReproduced
                   : (spread < 0.12 ? ClaimStatus::kPartial
                                    : ClaimStatus::kDeviation);
    claims.push_back(c);
  }

  if (const auto base = grid.At(cmax, 0.0)) {  // tau = 0 anchor
    ClaimCheck c;
    c.id = "mmlu-acc-tau0";
    c.description = "accuracy with exact retrieval (tau=0)";
    c.paper = "~50.2%";
    c.measured = Pct(base->mean.accuracy);
    c.status = Band(base->mean.accuracy, 0.49, 0.515, 0.02);
    claims.push_back(c);

    ClaimCheck h;
    h.id = "mmlu-hit-tau0";
    h.description = "no cache hits at tau=0 (§4.3.2)";
    h.paper = "0%";
    h.measured = Pct(base->mean.hit_rate);
    h.status = base->mean.hit_rate == 0.0 ? ClaimStatus::kReproduced
                                          : ClaimStatus::kDeviation;
    claims.push_back(h);
  } else {
    claims.push_back(
        Missing("mmlu-acc-tau0", "accuracy at tau=0", "~50.2%"));
  }

  if (const auto big = grid.At(cmax, 10.0)) {  // tau = 10 degradation
    ClaimCheck c;
    c.id = "mmlu-acc-tau10";
    c.description = "large tau degrades accuracy toward the no-RAG floor";
    c.paper = "~48.1%";
    c.measured = Pct(big->mean.accuracy);
    c.status = Band(big->mean.accuracy, 0.46, 0.49, 0.02);
    claims.push_back(c);
  }

  {  // hit rate grows with capacity at tau = 2 (6.1% -> 69.3%).
    const auto small = grid.At(10, 2.0);
    const auto large = grid.At(cmax, 2.0);
    if (small && large) {
      ClaimCheck c;
      c.id = "mmlu-hit-capacity";
      c.description = "hit rate at tau=2 grows strongly with capacity";
      c.paper = "6.1% (c=10) -> 69.3% (c=300)";
      c.measured =
          Pct(small->mean.hit_rate) + " -> " + Pct(large->mean.hit_rate);
      const bool grew = large->mean.hit_rate >
                        std::max(0.25, 3.0 * small->mean.hit_rate);
      const bool in_band = small->mean.hit_rate < 0.15 &&
                           large->mean.hit_rate > 0.45;
      c.status = grew && in_band
                     ? ClaimStatus::kReproduced
                     : (grew ? ClaimStatus::kPartial
                             : ClaimStatus::kDeviation);
      claims.push_back(c);
    } else {
      claims.push_back(Missing("mmlu-hit-capacity",
                               "hit rate vs capacity at tau=2",
                               "6.1% -> 69.3%"));
    }
  }

  if (const auto loose = grid.At(cmax, 5.0)) {  // tau >= 5 hit rates
    ClaimCheck c;
    c.id = "mmlu-hit-tau5";
    c.description = "hit rates reach ~93% for tau >= 5 (large c)";
    c.paper = "~93%";
    c.measured = Pct(loose->mean.hit_rate);
    c.status = Band(loose->mean.hit_rate, 0.80, 1.0, 0.10);
    claims.push_back(c);
  }

  {  // Headline: latency reduction while maintaining accuracy.
    ClaimCheck c;
    c.id = "mmlu-latency-reduction";
    c.description =
        "retrieval latency reduced while maintaining accuracy (abstract)";
    c.paper = "up to 59%";
    if (const auto best = BestGuardedReduction(cells)) {
      c.measured = "up to " + Pct(*best);
      c.status = Band(*best, 0.40, 0.90, 0.15);
    } else {
      c.measured = "no qualifying configuration";
      c.status = ClaimStatus::kDeviation;
    }
    claims.push_back(c);
  }
  return claims;
}

std::vector<ClaimCheck> CheckMedragClaims(
    const std::vector<SweepCell>& cells) {
  std::vector<ClaimCheck> claims;
  Grid grid(cells);
  if (grid.empty()) {
    claims.push_back(Missing("medrag-empty", "sweep produced no cells", "-"));
    return claims;
  }
  const std::int64_t cmax = grid.MaxCapacity();

  if (const auto base = grid.At(cmax, 0.0)) {
    ClaimCheck c;
    c.id = "medrag-acc-tau0";
    c.description = "accuracy with exact retrieval";
    c.paper = "~88%";
    c.measured = Pct(base->mean.accuracy);
    c.status = Band(base->mean.accuracy, 0.86, 0.90, 0.03);
    claims.push_back(c);
  } else {
    claims.push_back(Missing("medrag-acc-tau0", "accuracy at tau=0", "~88%"));
  }

  if (const auto mid = grid.At(200, 5.0)) {
    ClaimCheck c;
    c.id = "medrag-sweet-spot";
    c.description =
        "tau=5, c=200: high hit rate sustains near-baseline accuracy";
    c.paper = "hit 72.6%, accuracy ~88%";
    c.measured =
        "hit " + Pct(mid->mean.hit_rate) + ", accuracy " +
        Pct(mid->mean.accuracy);
    const bool hit_ok = mid->mean.hit_rate > 0.6 && mid->mean.hit_rate < 0.85;
    const bool acc_ok = mid->mean.accuracy > 0.84;
    c.status = hit_ok && acc_ok
                   ? ClaimStatus::kReproduced
                   : (acc_ok ? ClaimStatus::kPartial
                             : ClaimStatus::kDeviation);
    claims.push_back(c);
  }

  if (const auto cliff = grid.At(cmax, 10.0)) {
    ClaimCheck c;
    c.id = "medrag-acc-cliff";
    c.description = "tau=10: misleading context collapses accuracy";
    c.paper = "37%";
    c.measured = Pct(cliff->mean.accuracy);
    c.status = Band(cliff->mean.accuracy, 0.32, 0.45, 0.08);
    claims.push_back(c);

    ClaimCheck h;
    h.id = "medrag-hit-tau10";
    h.description = "tau=10 hit rate near saturation";
    h.paper = "98.4%";
    h.measured = Pct(cliff->mean.hit_rate);
    h.status = Band(cliff->mean.hit_rate, 0.90, 1.0, 0.10);
    claims.push_back(h);
  }

  {
    ClaimCheck c;
    c.id = "medrag-latency-reduction";
    c.description =
        "latency reduction while maintaining accuracy (abstract)";
    c.paper = "up to 70.8%";
    if (const auto best = BestGuardedReduction(cells)) {
      c.measured = "up to " + Pct(*best);
      c.status = Band(*best, 0.50, 0.95, 0.15);
    } else {
      c.measured = "no qualifying configuration";
      c.status = ClaimStatus::kDeviation;
    }
    claims.push_back(c);
  }
  return claims;
}

std::string RenderClaims(const std::vector<ClaimCheck>& claims) {
  std::string out;
  for (const auto& claim : claims) {
    out += '[';
    out += ClaimStatusName(claim.status);
    out += "] ";
    out += claim.id;
    out += ": ";
    out += claim.description;
    out += " (paper: ";
    out += claim.paper;
    out += " | measured: ";
    out += claim.measured;
    out += ")\n";
  }
  return out;
}

}  // namespace proximity
