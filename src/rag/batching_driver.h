// Dynamic microbatching serving driver (DESIGN.md §8).
//
// RunStreamConcurrent hands every worker thread one query at a time, so
// the database side only ever sees batch size 1. This driver replaces
// that claim loop with an admission queue: callers Submit queries (text
// or pre-computed embeddings) and get a future; a flusher thread drains
// the queue whenever `max_batch` queries are pending or the oldest has
// waited `max_wait_us` (flush-on-full / flush-on-timer), embeds queued
// text in one EmbedBatch call, probes the shared concurrent cache, and
// issues the remaining misses as ONE grouped SearchBatch against the
// index — which, for a ShardedIndex, fans shard×query legs across the
// thread pool so the fused batch kernels see real batch shapes.
//
// Within a flush, misses that are τ-similar to an earlier miss of the
// same batch coalesce onto that leader's retrieval (the in-batch
// analogue of ConcurrentProximityCache's single-flight). Every submitted
// query is exactly one of {hit, retrieved, coalesced}; Shutdown drains
// the queue, so no query is dropped mid-batch.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cache/concurrent_cache.h"
#include "embed/hash_embedder.h"
#include "index/vector_index.h"
#include "rag/concurrent_driver.h"
#include "workload/query_stream.h"

namespace proximity {

struct BatchingDriverOptions {
  /// Flush as soon as this many queries are pending.
  std::size_t max_batch = 32;
  /// Flush when the oldest pending query has waited this long.
  std::uint64_t max_wait_us = 200;
  /// Documents fetched per query (top-k of the NNS).
  std::size_t top_k = 10;
  /// Coalesce τ-similar misses within a batch onto one retrieval.
  bool coalesce = true;
};

/// Counters over the driver's lifetime. After Shutdown (queue drained,
/// flusher joined): completed == submitted and
/// hits + retrieved + coalesced == completed — no query is dropped.
struct BatchingDriverStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t hits = 0;
  std::uint64_t retrieved = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t batches = 0;
  std::uint64_t flushes_on_full = 0;
  std::uint64_t flushes_on_timer = 0;
  /// Batches flushed by Shutdown/Flush rather than size or timer.
  std::uint64_t flushes_on_drain = 0;
};

class BatchingDriver {
 public:
  /// `index` and `cache` are not owned and must outlive the driver.
  /// `embedder` may be null when only the embedding Submit path is used.
  BatchingDriver(const VectorIndex& index, ConcurrentProximityCache& cache,
                 const HashEmbedder* embedder,
                 BatchingDriverOptions options = {});
  ~BatchingDriver();

  BatchingDriver(const BatchingDriver&) = delete;
  BatchingDriver& operator=(const BatchingDriver&) = delete;

  /// Queues a pre-computed query embedding. Throws std::runtime_error
  /// after Shutdown.
  std::future<std::vector<VectorId>> Submit(std::vector<float> embedding);

  /// Queues raw query text; the flush embeds all queued text in one
  /// EmbedBatch call. Requires an embedder.
  std::future<std::vector<VectorId>> SubmitText(std::string text);

  /// Synchronous convenience: Submit + wait.
  std::vector<VectorId> Query(std::span<const float> embedding);

  /// Flushes everything currently pending without stopping the driver.
  void Flush();

  /// Drains the queue (every pending future completes) and stops the
  /// flusher. Idempotent; called by the destructor.
  void Shutdown();

  BatchingDriverStats stats() const;
  const BatchingDriverOptions& options() const noexcept { return options_; }

 private:
  struct Pending {
    std::string text;              // non-empty: embed at flush
    std::vector<float> embedding;  // used when text is empty
    std::promise<std::vector<VectorId>> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void FlusherLoop();
  /// Processes one batch outside the queue lock.
  void ProcessBatch(std::vector<Pending> batch);

  const VectorIndex& index_;
  ConcurrentProximityCache& cache_;
  const HashEmbedder* embedder_;
  BatchingDriverOptions options_;

  mutable std::mutex mu_;
  std::mutex shutdown_mu_;  // serializes concurrent Shutdown callers
  std::condition_variable cv_;
  std::deque<Pending> pending_;
  bool stop_ = false;
  // Drain requests outstanding: Flush() bumps `requested`; the flusher
  // copies it into `served` once the queue empties. A counter pair (not
  // an epoch captured at wait entry) so a request issued while the
  // flusher is between waits is never lost.
  std::uint64_t drain_requested_ = 0;
  std::uint64_t drain_served_ = 0;
  BatchingDriverStats stats_;

  std::thread flusher_;
};

/// RunStreamConcurrent's batched counterpart: `threads` client workers
/// claim stream entries and submit them to one shared BatchingDriver over
/// `index`, so concurrent in-flight queries group into real microbatches.
/// `driver_stats`, if non-null, receives the driver counters.
ConcurrentRunResult RunStreamBatched(
    const Workload& workload, const VectorIndex& index,
    ConcurrentProximityCache& cache, const AnswerModel& answer_model,
    std::uint64_t answer_seed, const std::vector<StreamEntry>& stream,
    const Matrix& embeddings, std::size_t threads,
    const BatchingDriverOptions& options = {},
    BatchingDriverStats* driver_stats = nullptr);

}  // namespace proximity
