// Dynamic microbatching serving driver (DESIGN.md §8).
//
// RunStreamConcurrent hands every worker thread one query at a time, so
// the database side only ever sees batch size 1. This driver replaces
// that claim loop with an admission queue: callers Submit queries (text
// or pre-computed embeddings) and get a future; a flusher thread drains
// the queue whenever `max_batch` queries are pending or the oldest has
// waited `max_wait_us` (flush-on-full / flush-on-timer), embeds queued
// text in one EmbedBatch call, probes the shared concurrent cache, and
// issues the remaining misses as ONE grouped SearchBatch against the
// index — which, for a ShardedIndex, fans shard×query legs across the
// thread pool so the fused batch kernels see real batch shapes.
//
// Within a flush, misses that are τ-similar to an earlier miss of the
// same batch coalesce onto that leader's retrieval (the in-batch
// analogue of ConcurrentProximityCache's single-flight). Every submitted
// query is exactly one of {hit, retrieved, coalesced, shed, expired};
// Shutdown drains the queue, so no query is dropped mid-batch.
//
// The driver is also the admission queue of the network front-end
// (DESIGN.md §9): SubmitAsync/SubmitTextAsync attach a completion
// callback instead of a future (the epoll loop must never block on
// one), `queue_bound` sheds over-admitted work with RESOURCE_EXHAUSTED
// instead of queueing without bound, and per-request deadlines are
// enforced at flush time — an entry whose deadline has already passed
// completes with DEADLINE_EXCEEDED without being embedded or searched.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cache/concurrent_cache.h"
#include "common/types.h"
#include "embed/hash_embedder.h"
#include "index/vector_index.h"
#include "rag/concurrent_driver.h"
#include "workload/query_stream.h"

namespace proximity {

struct BatchingDriverOptions {
  /// Flush as soon as this many queries are pending.
  std::size_t max_batch = 32;
  /// Flush when the oldest pending query has waited this long.
  std::uint64_t max_wait_us = 200;
  /// Documents fetched per query (top-k of the NNS).
  std::size_t top_k = 10;
  /// Coalesce τ-similar misses within a batch onto one retrieval.
  bool coalesce = true;
  /// Admission-queue bound; submissions beyond it are shed with
  /// RESOURCE_EXHAUSTED instead of queueing without bound. 0 = unbounded.
  std::size_t queue_bound = 0;
};

/// Counters over the driver's lifetime. After Shutdown (queue drained,
/// flusher joined):
///   hits + retrieved + coalesced + shed + expired == submitted
/// and completed == submitted - shed (shed entries finish inline at
/// Submit, everything else through a flush) — no query is dropped.
struct BatchingDriverStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t hits = 0;
  std::uint64_t retrieved = 0;
  std::uint64_t coalesced = 0;
  /// Shed at admission by `queue_bound` (RESOURCE_EXHAUSTED).
  std::uint64_t shed = 0;
  /// Deadline passed while queued (DEADLINE_EXCEEDED, never searched).
  std::uint64_t expired = 0;
  std::uint64_t batches = 0;
  std::uint64_t flushes_on_full = 0;
  std::uint64_t flushes_on_timer = 0;
  /// Batches flushed by Shutdown/Flush rather than size or timer.
  std::uint64_t flushes_on_drain = 0;
};

/// Outcome of one submission, delivered to the SubmitAsync callback.
struct BatchResult {
  RequestStatus status = RequestStatus::kOk;
  /// Top-k document ids; empty unless status == kOk.
  std::vector<VectorId> documents;
  /// kOk only: served from the cache without touching the index.
  bool cache_hit = false;
  /// kOk only: shared a τ-similar leader's retrieval within the batch.
  bool coalesced = false;
  /// Time spent in the admission queue before its batch flushed.
  Nanos queue_wait_ns = 0;
};

/// Completion callback; invoked exactly once, from the flusher thread
/// (or inline from Submit* on shed/shutdown). Must not block: the net
/// front-end completes futures back onto the event loop from here.
using BatchCallback = std::function<void(BatchResult)>;

struct SubmitOptions {
  /// Absolute deadline; max() means none. Entries whose deadline has
  /// passed when their batch flushes complete with kDeadlineExceeded
  /// without being embedded or searched.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
};

class BatchingDriver {
 public:
  /// `index` and `cache` are not owned and must outlive the driver.
  /// `embedder` may be null when only the embedding Submit path is used.
  BatchingDriver(const VectorIndex& index, ConcurrentProximityCache& cache,
                 const HashEmbedder* embedder,
                 BatchingDriverOptions options = {});
  ~BatchingDriver();

  BatchingDriver(const BatchingDriver&) = delete;
  BatchingDriver& operator=(const BatchingDriver&) = delete;

  /// Queues a pre-computed query embedding. Throws std::runtime_error
  /// after Shutdown; the returned future carries an exception when the
  /// entry is shed or expires (see BatchResult statuses).
  std::future<std::vector<VectorId>> Submit(std::vector<float> embedding);

  /// Queues raw query text; the flush embeds all queued text in one
  /// EmbedBatch call. Requires an embedder.
  std::future<std::vector<VectorId>> SubmitText(std::string text);

  /// Callback flavor for event-loop callers: never throws for
  /// flow-control reasons. `done` is invoked exactly once — inline with
  /// kResourceExhausted when the bounded queue is full, inline with
  /// kUnavailable after Shutdown, otherwise from the flusher thread.
  void SubmitAsync(std::vector<float> embedding, const SubmitOptions& opts,
                   BatchCallback done);

  /// Text flavor; requires an embedder.
  void SubmitTextAsync(std::string text, const SubmitOptions& opts,
                       BatchCallback done);

  /// Synchronous convenience: Submit + wait.
  std::vector<VectorId> Query(std::span<const float> embedding);

  /// Flushes everything currently pending without stopping the driver.
  void Flush();

  /// Drains the queue (every pending future completes) and stops the
  /// flusher. Idempotent; called by the destructor.
  void Shutdown();

  BatchingDriverStats stats() const;
  const BatchingDriverOptions& options() const noexcept { return options_; }

 private:
  struct Pending {
    std::string text;              // non-empty: embed at flush
    std::vector<float> embedding;  // used when text is empty
    BatchCallback done;
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point deadline;
  };

  /// Shared admission path. Returns false after Shutdown — the entry is
  /// left intact (not consumed, callback not invoked) so the caller
  /// picks throw vs callback. Invokes the callback inline with
  /// kResourceExhausted when the bounded queue sheds the entry.
  bool Enqueue(Pending&& entry);

  void FlusherLoop();
  /// Processes one batch outside the queue lock.
  void ProcessBatch(std::vector<Pending> batch);
  /// Completes `entry` with a non-OK status.
  static void Fail(Pending& entry, RequestStatus status, Nanos queue_wait_ns);

  const VectorIndex& index_;
  ConcurrentProximityCache& cache_;
  const HashEmbedder* embedder_;
  BatchingDriverOptions options_;

  mutable std::mutex mu_;
  std::mutex shutdown_mu_;  // serializes concurrent Shutdown callers
  std::condition_variable cv_;
  std::deque<Pending> pending_;
  bool stop_ = false;
  // Drain requests outstanding: Flush() bumps `requested`; the flusher
  // copies it into `served` once the queue empties. A counter pair (not
  // an epoch captured at wait entry) so a request issued while the
  // flusher is between waits is never lost.
  std::uint64_t drain_requested_ = 0;
  std::uint64_t drain_served_ = 0;
  BatchingDriverStats stats_;

  std::thread flusher_;
};

/// RunStreamConcurrent's batched counterpart: `threads` client workers
/// claim stream entries and submit them to one shared BatchingDriver over
/// `index`, so concurrent in-flight queries group into real microbatches.
/// `driver_stats`, if non-null, receives the driver counters. A non-null
/// `stop` flag makes workers stop claiming entries once it reads true
/// (the SIGINT/SIGTERM drain path: in-flight queries still complete and
/// the partial metrics are returned, not lost).
ConcurrentRunResult RunStreamBatched(
    const Workload& workload, const VectorIndex& index,
    ConcurrentProximityCache& cache, const AnswerModel& answer_model,
    std::uint64_t answer_seed, const std::vector<StreamEntry>& stream,
    const Matrix& embeddings, std::size_t threads,
    const BatchingDriverOptions& options = {},
    BatchingDriverStats* driver_stats = nullptr,
    const std::atomic<bool>* stop = nullptr);

}  // namespace proximity
