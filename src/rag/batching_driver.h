// Dynamic microbatching serving driver (DESIGN.md §8, §10).
//
// RunStreamConcurrent hands every worker thread one query at a time, so
// the database side only ever sees batch size 1. This driver replaces
// that claim loop with an admission queue: callers Submit queries (text
// or pre-computed embeddings) and get a future; a flusher thread drains
// the queue whenever `max_batch` queries are pending or the oldest has
// waited `max_wait_us` (flush-on-full / flush-on-timer), embeds queued
// text in one EmbedBatch call, probes the concurrent cache, and issues
// the remaining misses as ONE grouped SearchBatch against the index —
// which, for a ShardedIndex, fans shard×query legs across the thread
// pool so the fused batch kernels see real batch shapes.
//
// Within a flush, misses that are τ-similar to an earlier miss of the
// same batch coalesce onto that leader's retrieval (the in-batch
// analogue of ConcurrentProximityCache's single-flight). Every submitted
// query is exactly one of {hit, retrieved, coalesced, shed, expired,
// quota_shed}; Shutdown drains the queue, so no query is dropped
// mid-batch.
//
// The driver is also the admission queue of the network front-end
// (DESIGN.md §9): SubmitAsync/SubmitTextAsync attach a completion
// callback instead of a future (the epoll loop must never block on
// one), `queue_bound` sheds over-admitted work with RESOURCE_EXHAUSTED
// instead of queueing without bound, and per-request deadlines are
// enforced at flush time — an entry whose deadline has already passed
// completes with DEADLINE_EXCEEDED without being embedded or searched.
//
// Multi-tenant mode (DESIGN.md §10): constructed over a TenantRegistry,
// the driver keeps one admission queue per tenant and flushes them with
// weighted deficit-round-robin, so a flooding tenant cannot starve the
// others of batch slots — while embedding and search still run as one
// fused batch across tenants. Cache probes/inserts route to the
// submitting tenant's private cache, τ-coalescing only joins entries of
// the SAME tenant (cross-tenant reuse of approximate answers is an
// isolation leak, not a hit), and the registry's token-bucket quota is
// consulted at Enqueue — over-quota work completes RESOURCE_EXHAUSTED
// before any embedding is spent on it (`quota_shed`).
//
// Live-corpus mode (DESIGN.md §13): EnableMutation arms an INSERT/
// DELETE path over a mutation-capable index. Mutations ride the same
// admission queue (quota and queue_bound apply), their text joins the
// flush's one EmbedBatch call, and they are applied in arrival order
// BEFORE the flush's cache probes — then the index's bumped generation
// is pushed into every tenant cache touched by the flush, which is what
// makes the cache-staleness contract observable at hit time.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cache/concurrent_cache.h"
#include "cache/reuse_router.h"
#include "common/types.h"
#include "embed/hash_embedder.h"
#include "index/vector_index.h"
#include "obs/trace.h"
#include "rag/concurrent_driver.h"
#include "tenant/tenant_registry.h"
#include "workload/query_stream.h"

namespace proximity {

/// Live-corpus mutation kinds the driver can apply (EnableMutation).
enum class MutationOp : std::uint32_t {
  kNone = 0,
  /// Embed the entry's text and insert it as a new corpus vector; the
  /// completion carries the assigned VectorId as its single document.
  kInsert = 1,
  /// Tombstone the entry's target id; unknown/already-deleted targets
  /// complete with kInvalidArgument.
  kDelete = 2,
};

struct BatchingDriverOptions {
  /// Flush as soon as this many queries are pending.
  std::size_t max_batch = 32;
  /// Flush when the oldest pending query has waited this long.
  std::uint64_t max_wait_us = 200;
  /// Documents fetched per query (top-k of the NNS).
  std::size_t top_k = 10;
  /// Coalesce τ-similar same-tenant misses within a batch onto one
  /// retrieval.
  bool coalesce = true;
  /// Admission-queue bound (total across tenants); submissions beyond
  /// it are shed with RESOURCE_EXHAUSTED. 0 = unbounded.
  std::size_t queue_bound = 0;
  /// Batch composition across tenants: true = weighted deficit-round-
  /// robin over per-tenant queues (a flooding tenant cannot starve the
  /// rest); false = strict global FIFO by arrival (the pre-tenancy
  /// behavior, kept for the noisy-neighbor contrast bench).
  bool fair = true;
  /// Answer-reuse tier (DESIGN.md §15): probe the submitting tenant's
  /// answer cache before its retrieval cache and serve
  /// current-generation τ-hits without embedding-search work. Stale
  /// τ-hits fall through to the normal path; the router audits them
  /// against the fresh result and the entry is refreshed. Registry
  /// mode only — single-cache drivers ignore this flag.
  bool answer_reuse = false;
  /// Grounding thresholds for the stale-hit routing audit.
  ReuseRouterOptions router;
};

/// Counters over the driver's lifetime. After Shutdown (queue drained,
/// flusher joined):
///   hits + answer_hits + retrieved + coalesced + shed + expired
///       + quota_shed + mutations == submitted
/// and completed == submitted - shed - quota_shed (both shed kinds
/// finish inline at Submit, everything else through a flush) — no query
/// is dropped. The same invariant holds per tenant (tenant_stats()).
struct BatchingDriverStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t hits = 0;
  /// Served from a tenant's answer cache at flush (answer_reuse mode;
  /// current-generation τ-hits only — no retrieval ran).
  std::uint64_t answer_hits = 0;
  std::uint64_t retrieved = 0;
  std::uint64_t coalesced = 0;
  /// Shed at admission by `queue_bound` (RESOURCE_EXHAUSTED).
  std::uint64_t shed = 0;
  /// Deadline passed while queued (DEADLINE_EXCEEDED, never searched).
  std::uint64_t expired = 0;
  /// Refused by the tenant's token-bucket/inflight quota before any
  /// embedding or search work (RESOURCE_EXHAUSTED).
  std::uint64_t quota_shed = 0;
  /// Live-corpus INSERT/DELETE requests applied at flush (includes
  /// DELETEs of unknown ids, which complete kInvalidArgument).
  std::uint64_t mutations = 0;
  std::uint64_t batches = 0;
  std::uint64_t flushes_on_full = 0;
  std::uint64_t flushes_on_timer = 0;
  /// Batches flushed by Shutdown/Flush rather than size or timer.
  std::uint64_t flushes_on_drain = 0;
};

/// Outcome of one submission, delivered to the SubmitAsync callback.
struct BatchResult {
  RequestStatus status = RequestStatus::kOk;
  /// Top-k document ids; empty unless status == kOk.
  std::vector<VectorId> documents;
  /// Raw distances parallel to `documents`, filled only on the
  /// index-retrieval path (leaders and their coalesced followers).
  /// Cache hits leave this empty — the approximate cache stores bare id
  /// lists — which is how the cluster router knows when an exact
  /// distance merge is possible (net protocol v5, DESIGN.md §14).
  std::vector<float> distances;
  /// kOk only: served from the cache without touching the index.
  bool cache_hit = false;
  /// kOk only: served from the tenant's answer cache (answer_reuse
  /// mode). `documents`/`distances` carry the cached entry's evidence.
  bool answer_hit = false;
  /// kOk only: shared a τ-similar leader's retrieval within the batch.
  bool coalesced = false;
  /// Time spent in the admission queue before its batch flushed.
  Nanos queue_wait_ns = 0;
};

/// Completion callback; invoked exactly once, from the flusher thread
/// (or inline from Submit* on shed/shutdown). Must not block: the net
/// front-end completes futures back onto the event loop from here.
using BatchCallback = std::function<void(BatchResult)>;

struct SubmitOptions {
  /// Absolute deadline; max() means none. Entries whose deadline has
  /// passed when their batch flushes complete with kDeadlineExceeded
  /// without being embedded or searched.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Submitting tenant; ignored (treated as default) unless the driver
  /// was constructed over a TenantRegistry.
  TenantId tenant = kDefaultTenant;
  /// Request trace to attribute the driver's work to (obs/trace.h):
  /// queue wait, embed, cache probe, search and insert spans are all
  /// emitted under it. Inactive (default) = untraced.
  obs::TraceContext trace;
};

class BatchingDriver {
 public:
  /// Single-tenant mode: every submission shares `cache`. `index` and
  /// `cache` are not owned and must outlive the driver. `embedder` may
  /// be null when only the embedding Submit path is used.
  BatchingDriver(const VectorIndex& index, ConcurrentProximityCache& cache,
                 const HashEmbedder* embedder,
                 BatchingDriverOptions options = {});

  /// Multi-tenant mode: submissions carry SubmitOptions::tenant, cache
  /// probes/inserts route to that tenant's cache in `registry`, the
  /// registry's quotas gate admission, and the flush schedules across
  /// per-tenant queues (options.fair). `registry` must outlive the
  /// driver.
  BatchingDriver(const VectorIndex& index, TenantRegistry& registry,
                 const HashEmbedder* embedder,
                 BatchingDriverOptions options = {});

  ~BatchingDriver();

  BatchingDriver(const BatchingDriver&) = delete;
  BatchingDriver& operator=(const BatchingDriver&) = delete;

  /// Queues a pre-computed query embedding. Throws std::runtime_error
  /// after Shutdown; the returned future carries an exception when the
  /// entry is shed or expires (see BatchResult statuses).
  std::future<std::vector<VectorId>> Submit(std::vector<float> embedding);

  /// Queues raw query text; the flush embeds all queued text in one
  /// EmbedBatch call. Requires an embedder.
  std::future<std::vector<VectorId>> SubmitText(std::string text);

  /// Callback flavor for event-loop callers: never throws for
  /// flow-control reasons. `done` is invoked exactly once — inline with
  /// kResourceExhausted when the bounded queue or the tenant quota
  /// sheds the entry, inline with kUnavailable after Shutdown,
  /// otherwise from the flusher thread.
  void SubmitAsync(std::vector<float> embedding, const SubmitOptions& opts,
                   BatchCallback done);

  /// Text flavor; requires an embedder.
  void SubmitTextAsync(std::string text, const SubmitOptions& opts,
                       BatchCallback done);

  /// Arms the live-corpus mutation path. `index` must be the SAME index
  /// the driver was constructed over (asserted) and must report
  /// SupportsMutation(); throws std::invalid_argument otherwise.
  /// Mutations ride the admission queue like queries — tenant quotas
  /// and queue_bound apply — and are applied at flush time in arrival
  /// order, BEFORE that flush's cache probes, so the generation stamp
  /// each tenant cache receives (the staleness contract) reflects them.
  void EnableMutation(VectorIndex& index);

  /// Whether EnableMutation has armed the mutation path.
  bool mutation_enabled() const noexcept {
    return mutable_index_.load(std::memory_order_acquire) != nullptr;
  }

  /// Queues one live-corpus mutation. kInsert embeds `text` (requires
  /// an embedder; `target` ignored); kDelete tombstones `target`
  /// (`text` ignored). Completes inline with kInvalidArgument when the
  /// mutation path is not enabled, the op is kNone, or an insert has no
  /// text; otherwise exactly like SubmitAsync (shed/quota/deadline all
  /// apply). A successful insert's BatchResult carries the assigned
  /// VectorId as its single document.
  void SubmitMutationAsync(MutationOp op, std::string text, VectorId target,
                           const SubmitOptions& opts, BatchCallback done);

  /// Synchronous convenience: Submit + wait.
  std::vector<VectorId> Query(std::span<const float> embedding);

  /// Flushes everything currently pending without stopping the driver.
  void Flush();

  /// Drains the queue (every pending future completes) and stops the
  /// flusher. Idempotent; called by the destructor.
  void Shutdown();

  BatchingDriverStats stats() const;
  /// Per-tenant view of the same counters; the conservation invariant
  /// holds for every entry. Single-tenant drivers report everything
  /// under kDefaultTenant.
  std::map<TenantId, BatchingDriverStats> tenant_stats() const;
  const BatchingDriverOptions& options() const noexcept { return options_; }

  /// Entries currently queued, total and per tenant (only tenants with
  /// a non-empty queue appear). Live introspection (/statusz) reads
  /// these while the flusher runs.
  std::size_t pending() const;
  std::map<TenantId, std::size_t> queue_depths() const;

 private:
  struct Pending {
    std::string text;              // non-empty: embed at flush
    std::vector<float> embedding;  // used when text is empty
    BatchCallback done;
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point deadline;
    TenantId tenant = kDefaultTenant;
    obs::TraceContext trace;
    std::uint64_t seq = 0;  // global arrival order (FIFO mode)
    /// kNone = query; otherwise a live-corpus mutation entry.
    MutationOp op = MutationOp::kNone;
    VectorId target = kInvalidVector;  // kDelete only
  };

  /// One tenant's admission queue plus its deficit-round-robin credit.
  struct TenantQueue {
    std::deque<Pending> queue;
    double deficit = 0.0;
  };

  /// Shared admission path. Returns false after Shutdown — the entry is
  /// left intact (not consumed, callback not invoked) so the caller
  /// picks throw vs callback. Invokes the callback inline with
  /// kResourceExhausted when the bounded queue or the tenant quota
  /// sheds the entry.
  bool Enqueue(Pending&& entry);

  void FlusherLoop();
  /// Pops up to `take` entries — DRR across tenant queues in fair mode,
  /// global arrival order otherwise. Caller must hold mu_.
  std::vector<Pending> TakeBatch(std::size_t take);
  /// Earliest enqueue time across queue fronts. Caller must hold mu_;
  /// total_pending_ must be > 0.
  std::chrono::steady_clock::time_point OldestEnqueued() const;
  /// The cache serving `tenant` (the tenant's own in registry mode).
  ConcurrentProximityCache& CacheFor(TenantId tenant);
  /// Processes one batch outside the queue lock.
  void ProcessBatch(std::vector<Pending> batch);
  /// Completes `entry` with a non-OK status.
  static void Fail(Pending& entry, RequestStatus status, Nanos queue_wait_ns);

  const VectorIndex& index_;
  /// Mutable alias of index_, set by EnableMutation; null = mutation
  /// path disarmed (SubmitMutationAsync fails with kInvalidArgument).
  /// Atomic: EnableMutation may race the already-running flusher.
  std::atomic<VectorIndex*> mutable_index_{nullptr};
  ConcurrentProximityCache* cache_;  // single-tenant mode; else null
  TenantRegistry* registry_;         // multi-tenant mode; else null
  const HashEmbedder* embedder_;
  BatchingDriverOptions options_;
  /// Audits stale answer-cache hits against their fresh retrieval
  /// (answer_reuse mode). Touched by the flusher thread only.
  ReuseRouter router_;

  mutable std::mutex mu_;
  std::mutex shutdown_mu_;  // serializes concurrent Shutdown callers
  std::condition_variable cv_;
  // Per-tenant queues; `rr_` lists each tenant with a non-empty queue
  // exactly once, in round-robin service order. `total_pending_` is the
  // sum of queue sizes (the queue_bound denominator).
  std::map<TenantId, TenantQueue> queues_;
  std::deque<TenantId> rr_;
  std::size_t total_pending_ = 0;
  std::uint64_t next_seq_ = 0;
  bool stop_ = false;
  // Drain requests outstanding: Flush() bumps `requested`; the flusher
  // copies it into `served` once the queue empties. A counter pair (not
  // an epoch captured at wait entry) so a request issued while the
  // flusher is between waits is never lost.
  std::uint64_t drain_requested_ = 0;
  std::uint64_t drain_served_ = 0;
  BatchingDriverStats stats_;
  std::map<TenantId, BatchingDriverStats> tenant_stats_;

  std::thread flusher_;
};

/// RunStreamConcurrent's batched counterpart: `threads` client workers
/// claim stream entries and submit them to one shared BatchingDriver over
/// `index`, so concurrent in-flight queries group into real microbatches.
/// `driver_stats`, if non-null, receives the driver counters. A non-null
/// `stop` flag makes workers stop claiming entries once it reads true
/// (the SIGINT/SIGTERM drain path: in-flight queries still complete and
/// the partial metrics are returned, not lost).
ConcurrentRunResult RunStreamBatched(
    const Workload& workload, const VectorIndex& index,
    ConcurrentProximityCache& cache, const AnswerModel& answer_model,
    std::uint64_t answer_seed, const std::vector<StreamEntry>& stream,
    const Matrix& embeddings, std::size_t threads,
    const BatchingDriverOptions& options = {},
    BatchingDriverStats* driver_stats = nullptr,
    const std::atomic<bool>* stop = nullptr);

}  // namespace proximity
