#!/usr/bin/env bash
# Telemetry-layer verification matrix (ISSUE PR 2):
#   1. PROXIMITY_OBS=ON  — full obs + concurrent suites, the default shape.
#   2. PROXIMITY_OBS=OFF — the no-op contract: the same suites must build
#      and pass with spans/handles compiled out.
#   3. ThreadSanitizer   — the lock-free record path (per-thread shards,
#      relaxed atomics, lazy HistShard publication) under the contention
#      tests.
#
# Usage: tools/check.sh [--fast]
#   --fast skips the TSan configuration (the slowest build).
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S . "$@" >/dev/null
  cmake --build "$build_dir" -j "$(nproc)" \
    --target obs_test concurrent_test common_test cache_test proximity_cli
  (cd "$build_dir" && ctest -L obs --output-on-failure)
  (cd "$build_dir" && ctest -R 'Concurrent|LatencyHistogram' \
    --output-on-failure)
}

echo "== [1/3] PROXIMITY_OBS=ON =="
run_suite build-obs-on -DPROXIMITY_OBS=ON

echo "== [2/3] PROXIMITY_OBS=OFF =="
run_suite build-obs-off -DPROXIMITY_OBS=OFF
# The OFF binary must still accept the flag and produce (empty) exports.
(cd build-obs-off && ./tools/proximity_cli info | grep -q "compiled OFF")

if [[ "$FAST" == "0" ]]; then
  echo "== [3/3] ThreadSanitizer =="
  cmake -B build-tsan -S . -DPROXIMITY_OBS=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -O1 -g" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" >/dev/null
  cmake --build build-tsan -j "$(nproc)" --target obs_test concurrent_test
  (cd build-tsan && ctest -L obs --output-on-failure)
  (cd build-tsan && ctest -R 'Concurrent' --output-on-failure)
else
  echo "== [3/3] ThreadSanitizer skipped (--fast) =="
fi

echo "check.sh: all configurations passed"
