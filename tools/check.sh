#!/usr/bin/env bash
# Concurrency/telemetry verification matrix:
#   1. PROXIMITY_OBS=ON  — obs + concurrent + shard suites, default shape.
#   2. PROXIMITY_OBS=OFF — the no-op contract: the same suites must build
#      and pass with spans/handles compiled out.
#   3. ThreadSanitizer   — every suite labeled `tsan` (lock-free obs
#      record path, concurrent cache, thread pool, sharded scatter-gather
#      + batching driver) under contention.
#
# Suites are selected by ctest label (see tests/CMakeLists.txt), so new
# tests join the matrix by labeling, not by editing this script.
#
# Usage: tools/check.sh [--fast|--tsan-only]
#   --fast       skips the TSan configuration (the slowest build).
#   --tsan-only  runs only the TSan configuration (CI runs the ON/OFF
#                matrix as separate jobs).
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=full
case "${1:-}" in
  --fast) MODE=fast ;;
  --tsan-only) MODE=tsan ;;
  "") ;;
  *) echo "unknown flag: $1" >&2; exit 2 ;;
esac

# Suites with cross-thread behavior plus the histogram/stats substrate
# they report through; `net` adds the epoll front-end (unit suite + the
# serve_smoke loopback drain check), `tenant` the multi-tenant registry
# and fair batching, `quant` the compressed scan path (its scan.*
# telemetry test is OBS-gated, so both matrix legs exercise it),
# `acache` the answer-level cache tier (its concurrent wrapper and the
# driver's answer path ride TSan).
LABELS='^(obs|concurrent|shard|common|net|tenant|quant|acache)$'

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S . "$@" >/dev/null
  cmake --build "$build_dir" -j "$(nproc)" \
    --target obs_test concurrent_test common_test cache_test shard_test \
    net_test tenant_test quant_test answer_cache_test proximity_cli
  (cd "$build_dir" && ctest -L "$LABELS" --no-tests=error --output-on-failure)
}

run_tsan() {
  echo "== ThreadSanitizer =="
  cmake -B build-tsan -S . -DPROXIMITY_OBS=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -O1 -g" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" >/dev/null
  cmake --build build-tsan -j "$(nproc)" \
    --target obs_test concurrent_test common_test shard_test net_test \
    tenant_test quant_test answer_cache_test
  (cd build-tsan && ctest -L '^tsan$' --no-tests=error --output-on-failure)
}

if [[ "$MODE" == "tsan" ]]; then
  run_tsan
  echo "check.sh: TSan configuration passed"
  exit 0
fi

echo "== [1/3] PROXIMITY_OBS=ON =="
run_suite build-obs-on -DPROXIMITY_OBS=ON

echo "== [2/3] PROXIMITY_OBS=OFF =="
run_suite build-obs-off -DPROXIMITY_OBS=OFF
# The OFF binary must still accept the flag and produce (empty) exports.
(cd build-obs-off && ./tools/proximity_cli info | grep -q "compiled OFF")

if [[ "$MODE" == "full" ]]; then
  echo "== [3/3] ThreadSanitizer =="
  run_tsan
else
  echo "== [3/3] ThreadSanitizer skipped (--fast) =="
fi

echo "check.sh: all configurations passed"
