#!/usr/bin/env bash
# Serve smoke: end-to-end check of the net serving front-end.
#
#   1. Boots `proximity_cli serve --listen 127.0.0.1:0` (ephemeral port,
#      published through port_file=) with a small corpus.
#   2. Runs a short closed-loop load with `proximity_cli client`.
#   2b. Round-trips a v4 INSERT + DELETE against the live index
#       (the server runs index=mutable) and asserts /statusz shows the
#       bumped mutation generation.
#   3. SIGTERMs the server and asserts the drain is clean:
#        - the client saw every request answered (ok == sent, zero
#          transport errors),
#        - the server answered every frame (requests == responses,
#          nothing abandoned, no protocol errors),
#        - the interrupted run still wrote its --metrics-out report.
#
# Registered as a ctest test labeled `net` (tools/CMakeLists.txt), so it
# runs in `ctest -L net`, the default ctest sweep, and tools/check.sh.
#
# Usage: tools/serve_smoke.sh [--build-dir DIR]
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
done
CLI="$BUILD_DIR/tools/proximity_cli"
if [[ ! -x "$CLI" ]]; then
  echo "serve_smoke: $CLI not built" >&2
  exit 2
fi

N=200
CONNS=4
CORPUS=2000

TMP=$(mktemp -d)
SERVE_PID=""
cleanup() {
  [[ -n "$SERVE_PID" ]] && kill -9 "$SERVE_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

echo "== serve_smoke: starting server on an ephemeral port =="
"$CLI" serve --listen 127.0.0.1:0 "port_file=$TMP/port" \
  --admin 127.0.0.1:0 "admin_port_file=$TMP/admin_port" \
  "corpus=$CORPUS" index=mutable quiet=true \
  --metrics-out "$TMP/metrics.json" >"$TMP/serve.log" 2>&1 &
SERVE_PID=$!

# Corpus + index build can be slow on a loaded host, so the window is
# generous; a dead server process fails immediately instead.
for _ in $(seq 1 1200); do
  [[ -s "$TMP/port" ]] && break
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "serve_smoke: FAIL — server exited before publishing its port" >&2
    cat "$TMP/serve.log" >&2
    exit 1
  fi
  sleep 0.1
done
if [[ ! -s "$TMP/port" ]]; then
  echo "serve_smoke: FAIL — server never published its port" >&2
  cat "$TMP/serve.log" >&2
  exit 1
fi
PORT=$(cat "$TMP/port")
echo "server up on 127.0.0.1:$PORT"

echo "== serve_smoke: closed-loop load ($N requests, $CONNS conns) =="
"$CLI" client "connect=127.0.0.1:$PORT" "n=$N" "conns=$CONNS" \
  "corpus=$CORPUS" quiet=true | tee "$TMP/client.log"

echo "== serve_smoke: admin plane (/healthz /metrics /tracez) =="
if [[ ! -s "$TMP/admin_port" ]]; then
  echo "serve_smoke: FAIL — server never published its admin port" >&2
  exit 1
fi
ADMIN_PORT=$(cat "$TMP/admin_port")
ADMIN="http://127.0.0.1:$ADMIN_PORT"
if ! curl -fsS "$ADMIN/healthz" | grep -q "serving"; then
  echo "serve_smoke: FAIL — /healthz did not answer 'serving'" >&2
  exit 1
fi
curl -fsS "$ADMIN/metrics" >"$TMP/prom.txt"
curl -fsS "$ADMIN/tracez" >"$TMP/tracez.json"
if ! grep -q '"traces"' "$TMP/tracez.json"; then
  echo "serve_smoke: FAIL — /tracez is not a trace list" >&2
  exit 1
fi
if "$CLI" info | grep -q "compiled OFF"; then
  echo "serve_smoke: PROXIMITY_OBS=OFF build — skipping live-scrape checks"
else
  if ! grep -q "^proximity_net_requests" "$TMP/prom.txt"; then
    echo "serve_smoke: FAIL — /metrics scrape lacks proximity_net_requests" >&2
    exit 1
  fi
  # The tail sampler keeps at least the slowest requests of the load;
  # resolve one id back into Perfetto trace_event JSON.
  TRACE_ID=$(grep -o '"id":"0x[0-9a-f]*"' "$TMP/tracez.json" | head -1 |
             sed 's/.*0x\([0-9a-f]*\)".*/\1/')
  if [[ -z "$TRACE_ID" ]]; then
    echo "serve_smoke: FAIL — /tracez sampled no traces from the load" >&2
    exit 1
  fi
  if ! curl -fsS "$ADMIN/tracez?id=$TRACE_ID" | grep -q '"traceEvents"'; then
    echo "serve_smoke: FAIL — /tracez?id=$TRACE_ID is not trace_event JSON" >&2
    exit 1
  fi
  echo "admin plane live: scraped /metrics, resolved trace 0x$TRACE_ID"
fi

echo "== serve_smoke: v4 mutation round-trip =="
# The server runs index=mutable, so its /statusz reports the mutation
# line with the live generation counter. Capture it, push one INSERT +
# DELETE pair through the wire protocol, and assert the counter moved
# by exactly two — proof the mutations reached the index, not just the
# socket.
GEN_LINE=$(curl -fsS "$ADMIN/statusz" | grep "mutation: enabled generation=")
if [[ -z "$GEN_LINE" ]]; then
  echo "serve_smoke: FAIL — /statusz lacks the mutation line" >&2
  exit 1
fi
GEN_BEFORE=$(echo "$GEN_LINE" | sed 's/.*generation=\([0-9]*\).*/\1/')
"$CLI" client "connect=127.0.0.1:$PORT" \
  "insert_text=a freshly ingested smoke document" delete_inserted=true \
  quiet=true | tee "$TMP/mut.log"
if ! grep -q "insert: status=OK" "$TMP/mut.log"; then
  echo "serve_smoke: FAIL — INSERT did not come back OK" >&2
  exit 1
fi
if ! grep -q "delete: status=OK" "$TMP/mut.log"; then
  echo "serve_smoke: FAIL — DELETE did not come back OK" >&2
  exit 1
fi
GEN_AFTER=$(curl -fsS "$ADMIN/statusz" |
            grep "mutation: enabled generation=" |
            sed 's/.*generation=\([0-9]*\).*/\1/')
if [[ "$GEN_AFTER" -ne $((GEN_BEFORE + 2)) ]]; then
  echo "serve_smoke: FAIL — generation $GEN_BEFORE -> $GEN_AFTER," \
       "expected +2 (one INSERT, one DELETE)" >&2
  exit 1
fi
echo "mutation round-trip OK: generation $GEN_BEFORE -> $GEN_AFTER"

echo "== serve_smoke: SIGTERM drain =="
kill -TERM "$SERVE_PID"
SERVE_RC=0
wait "$SERVE_PID" || SERVE_RC=$?
SERVE_PID=""
cat "$TMP/serve.log"
if [[ "$SERVE_RC" -ne 0 ]]; then
  echo "serve_smoke: FAIL — server exited $SERVE_RC after SIGTERM" >&2
  exit 1
fi

fail=0
if ! grep -q "sent=$N ok=$N " "$TMP/client.log"; then
  echo "serve_smoke: FAIL — client did not see $N OK answers" >&2
  fail=1
fi
if ! grep -q "transport_errors=0" "$TMP/client.log"; then
  echo "serve_smoke: FAIL — client hit transport errors" >&2
  fail=1
fi
# The load's $N frames plus the mutation round-trip's INSERT + DELETE.
TOTAL=$((N + 2))
if ! grep -q "requests=$TOTAL responses=$TOTAL " "$TMP/serve.log"; then
  echo "serve_smoke: FAIL — server dropped responses" >&2
  fail=1
fi
if ! grep -q "abandoned=0 protocol_errors=0" "$TMP/serve.log"; then
  echo "serve_smoke: FAIL — abandoned work or protocol errors" >&2
  fail=1
fi
if [[ ! -s "$TMP/metrics.json" ]]; then
  echo "serve_smoke: FAIL — drained run did not write --metrics-out" >&2
  fail=1
fi
# net.* counters only exist when telemetry is compiled in; an OBS=OFF
# build still writes the (empty) report, which is checked above.
if "$CLI" info | grep -q "compiled OFF"; then
  echo "serve_smoke: PROXIMITY_OBS=OFF build — skipping net.* check"
elif ! grep -q '"net.requests"' "$TMP/metrics.json"; then
  echo "serve_smoke: FAIL — net.* counters missing from the report" >&2
  fail=1
fi
if [[ "$fail" -ne 0 ]]; then
  exit 1
fi

echo "serve_smoke: clean drain, zero dropped responses"
