#!/usr/bin/env bash
# Bench smoke: fast regression gates over the two self-measuring benches.
#
#   1. obs_overhead      — exits non-zero by itself if the span + counter
#                          overhead on the 768-d batch scan exceeds 2%.
#   2. distance_kernels  — --quick sweep; this script fails if the
#                          dispatched l2 dim=768 batch=4096 kernel is not
#                          at least as fast as the portable one
#                          (speedup_vs_portable >= 1.0).
#   3. shard_scaling     — --quick sweep; on hosts with < 4 cores the
#                          monotonic-qps gate is forced to run anyway via
#                          --threads=4 (the bench records the pool size
#                          and a machine-readable skip_reason when the
#                          gate genuinely cannot run).
#   4. serve_load        — --quick closed/open-loop sweep against the
#                          epoll serving front-end over loopback; fails
#                          by itself if any request goes unanswered.
#   5. tenant_isolation  — --quick noisy-neighbor sweep; fails by itself
#                          if the compliant tenant's p99 under a quota'd
#                          DRR flood exceeds 2x its solo baseline, if
#                          the flood never trips the quota, or if any
#                          per-tenant conservation equation breaks.
#   6. quantized_scan    — --quick (100k x 768-d) compressed-vector fast
#                          path; this script fails if the sq8 two-level
#                          search is not >= 1.5x faster than the float32
#                          scan or its recall@10 vs float drops below
#                          0.95 (DESIGN.md §11; the full 1M gate is 2x).
#   7. churn_sweep       — --quick live-corpus churn gates (DESIGN.md
#                          §13): recall@10 after 20% churn must hold
#                          >= 0.95 of a rebuilt-from-scratch oracle, the
#                          slot-arena conservation equation must close,
#                          and on multi-core hosts query p99 under
#                          sustained ingest must stay <= 2x quiet (on
#                          1-core hosts the p99 gate records a
#                          machine-readable skip_reason instead).
#   8. answer_cache      — --quick answer-tier gates (DESIGN.md §15):
#                          answer-hit TTFT must be >= 2x better than a
#                          miss on the same stream, end-to-end accuracy
#                          must stay within 1 point of the
#                          no-answer-tier baseline, and the overlap
#                          draft accounting must balance.
#
# Emits BENCH_obs.json, BENCH_kernels.json, BENCH_shard.json,
# BENCH_net.json, BENCH_tenant.json, BENCH_quant.json, BENCH_churn.json,
# BENCH_answer.json
# and BENCH_trace.json (serve_load's exported Perfetto trace) into --out
# (default: the build dir), which CI uploads as artifacts. Timing gates on shared runners are noisy, so CI marks
# this job non-blocking; locally it is a quick sanity check that the
# perf story still holds.
#
# Usage: tools/bench_smoke.sh [--build-dir DIR] [--out DIR]
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build
OUT_DIR=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --out) OUT_DIR="$2"; shift 2 ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
done
OUT_DIR="${OUT_DIR:-$BUILD_DIR}"
mkdir -p "$OUT_DIR"

cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target obs_overhead distance_kernels shard_scaling serve_load \
  tenant_isolation quantized_scan churn_sweep answer_cache

echo "== bench_smoke: obs_overhead (2% telemetry gate) =="
"$BUILD_DIR/bench/obs_overhead" --json="$OUT_DIR/BENCH_obs.json"

# The bench self-gates both ratios; re-check the tracing row from the
# JSON so a reporting regression (row missing) also fails the smoke.
TRACE_PCT=$(awk -F'"trace_overhead_pct": ' '
  NF > 1 { split($2, a, ","); print a[1]; exit }
' "$OUT_DIR/BENCH_obs.json")
if [[ -z "$TRACE_PCT" ]]; then
  echo "bench_smoke: FAIL — trace_overhead_pct missing from BENCH_obs.json" >&2
  exit 1
fi
echo "trace overhead over spans-only: ${TRACE_PCT}%"
if ! awk -v p="$TRACE_PCT" 'BEGIN { exit !(p <= 2.0) }'; then
  echo "bench_smoke: FAIL — tracing overhead ${TRACE_PCT}% exceeds 2%" >&2
  exit 1
fi

echo "== bench_smoke: distance_kernels --quick (speedup gate) =="
# The filter matches no gbench case, so only the sweep runs; an
# unmatched filter is not an error for the benchmark library.
"$BUILD_DIR/bench/distance_kernels" --quick \
  --json="$OUT_DIR/BENCH_kernels.json" \
  --benchmark_filter=__skip_gbench__

SPEEDUP=$(awk -F'"speedup_vs_portable": ' '
  /"dim": 768, "batch": 4096/ { split($2, a, "}"); print a[1]; exit }
' "$OUT_DIR/BENCH_kernels.json")

if [[ -z "$SPEEDUP" ]]; then
  echo "bench_smoke: FAIL — l2/768/4096 cell missing from BENCH_kernels.json" >&2
  exit 1
fi
echo "l2 dim=768 batch=4096 speedup_vs_portable=$SPEEDUP"
if ! awk -v s="$SPEEDUP" 'BEGIN { exit !(s >= 1.0) }'; then
  echo "bench_smoke: FAIL — dispatched kernel slower than portable" >&2
  exit 1
fi

echo "== bench_smoke: shard_scaling --quick (monotonic-qps gate) =="
# Small hosts force a 4-thread pool so the gate still runs; the verdict
# is informational here (timing on loaded runners is noisy) but the
# bench must complete and the JSON must carry either a verdict or a
# machine-readable skip_reason.
SHARD_ARGS=(--quick "--json=$OUT_DIR/BENCH_shard.json")
if [[ "$(nproc)" -lt 4 ]]; then
  SHARD_ARGS+=(--threads=4)
fi
"$BUILD_DIR/bench/shard_scaling" "${SHARD_ARGS[@]}"
if ! grep -q '"monotonic_1_to_4": \(true\|false\)' \
    "$OUT_DIR/BENCH_shard.json"; then
  echo "bench_smoke: FAIL — shard gate neither ran nor recorded a" \
       "skip_reason" >&2
  grep -q '"skip_reason": "' "$OUT_DIR/BENCH_shard.json" || exit 1
fi

echo "== bench_smoke: serve_load --quick (net front-end) =="
# serve_load exits non-zero by itself when any request goes unanswered
# or the driver's conservation equation breaks. --trace-out exports the
# most interesting tail-sampled trace of the run as Chrome/Perfetto
# trace_event JSON (CI uploads it with the BENCH_*.json artifacts).
"$BUILD_DIR/bench/serve_load" --quick --json="$OUT_DIR/BENCH_net.json" \
  --trace-out="$OUT_DIR/BENCH_trace.json"
if ! grep -q '"traceEvents"' "$OUT_DIR/BENCH_trace.json"; then
  echo "bench_smoke: FAIL — serve_load trace export is not trace_event JSON" >&2
  exit 1
fi

echo "== bench_smoke: tenant_isolation --quick (noisy-neighbor gate) =="
# tenant_isolation exits non-zero by itself when the compliant tenant's
# p99 under the fair-mode flood exceeds 2x solo, the quota never fires,
# or per-tenant conservation breaks.
"$BUILD_DIR/bench/tenant_isolation" --quick \
  --json="$OUT_DIR/BENCH_tenant.json"

echo "== bench_smoke: quantized_scan --quick (compressed fast-path gate) =="
"$BUILD_DIR/bench/quantized_scan" --quick \
  --json="$OUT_DIR/BENCH_quant.json"

QUANT=$(awk -F'"speedup_vs_float": ' '
  /"storage": "sq8"/ { split($2, a, "}"); print a[1]; exit }
' "$OUT_DIR/BENCH_quant.json")
QRECALL=$(awk -F'"recall_at_k": ' '
  /"storage": "sq8"/ { split($2, a, ","); print a[1]; exit }
' "$OUT_DIR/BENCH_quant.json")

if [[ -z "$QUANT" || -z "$QRECALL" ]]; then
  echo "bench_smoke: FAIL — sq8 row missing from BENCH_quant.json" >&2
  exit 1
fi
echo "sq8 speedup_vs_float=$QUANT recall@10=$QRECALL"
if ! awk -v s="$QUANT" 'BEGIN { exit !(s >= 1.5) }'; then
  echo "bench_smoke: FAIL — sq8 two-level search < 1.5x over float scan" >&2
  exit 1
fi
if ! awk -v r="$QRECALL" 'BEGIN { exit !(r >= 0.95) }'; then
  echo "bench_smoke: FAIL — sq8 recall@10 vs float below 0.95" >&2
  exit 1
fi

echo "== bench_smoke: churn_sweep --quick (live-corpus churn gates) =="
# churn_sweep exits non-zero by itself when the recall-after-churn or
# conservation gate fails, and on multi-core hosts when p99 under
# ingest exceeds 2x quiet. Mirror the shard-gate handling: the p99
# verdict must be true/false or null with a machine-readable
# skip_reason (1-core hosts timeslice queries against the writer, so
# p99 there measures the scheduler, not the index).
"$BUILD_DIR/bench/churn_sweep" --quick \
  --json="$OUT_DIR/BENCH_churn.json"
if ! grep -q '"recall_gate": true' "$OUT_DIR/BENCH_churn.json"; then
  echo "bench_smoke: FAIL — recall-after-churn gate not recorded true" >&2
  exit 1
fi
if ! grep -q '"conservation_ok": true' "$OUT_DIR/BENCH_churn.json"; then
  echo "bench_smoke: FAIL — slot-arena conservation gate not true" >&2
  exit 1
fi
if ! grep -q '"p99_gate": \(true\|false\)' "$OUT_DIR/BENCH_churn.json"; then
  echo "bench_smoke: churn p99 gate skipped — checking skip_reason"
  grep -q '"p99_skip_reason": "' "$OUT_DIR/BENCH_churn.json" || {
    echo "bench_smoke: FAIL — churn p99 gate neither ran nor recorded" \
         "a skip_reason" >&2
    exit 1
  }
fi

echo "== bench_smoke: answer_cache --quick (answer-tier TTFT/accuracy gates) =="
# answer_cache exits non-zero by itself when any gate fails; re-check
# the two headline numbers from the JSON so a reporting regression
# (field missing) also fails the smoke.
"$BUILD_DIR/bench/answer_cache" --quick \
  --json="$OUT_DIR/BENCH_answer.json"

ANS_SPEEDUP=$(awk -F'"ttft_speedup": ' '
  NF > 1 { split($2, a, ","); print a[1]; exit }
' "$OUT_DIR/BENCH_answer.json")
ANS_DELTA=$(awk -F'"accuracy_delta_pp": ' '
  NF > 1 { split($2, a, ","); print a[1]; exit }
' "$OUT_DIR/BENCH_answer.json")

if [[ -z "$ANS_SPEEDUP" || -z "$ANS_DELTA" ]]; then
  echo "bench_smoke: FAIL — ttft_speedup/accuracy_delta_pp missing from" \
       "BENCH_answer.json" >&2
  exit 1
fi
echo "answer-hit ttft_speedup=$ANS_SPEEDUP accuracy_delta_pp=$ANS_DELTA"
if ! awk -v s="$ANS_SPEEDUP" 'BEGIN { exit !(s >= 2.0) }'; then
  echo "bench_smoke: FAIL — answer-hit TTFT speedup below 2x" >&2
  exit 1
fi
if ! awk -v d="$ANS_DELTA" 'BEGIN { exit !(d <= 1.0) }'; then
  echo "bench_smoke: FAIL — answer-tier accuracy cost exceeds 1 point" >&2
  exit 1
fi

echo "bench_smoke: all gates passed"
