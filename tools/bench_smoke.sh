#!/usr/bin/env bash
# Bench smoke: fast regression gates over the two self-measuring benches.
#
#   1. obs_overhead      — exits non-zero by itself if the span + counter
#                          overhead on the 768-d batch scan exceeds 2%.
#   2. distance_kernels  — --quick sweep; this script fails if the
#                          dispatched l2 dim=768 batch=4096 kernel is not
#                          at least as fast as the portable one
#                          (speedup_vs_portable >= 1.0).
#
# Emits BENCH_obs.json and BENCH_kernels.json into --out (default:
# the build dir), which CI uploads as artifacts. Timing gates on shared
# runners are noisy, so CI marks this job non-blocking; locally it is a
# quick sanity check that the perf story still holds.
#
# Usage: tools/bench_smoke.sh [--build-dir DIR] [--out DIR]
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build
OUT_DIR=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --out) OUT_DIR="$2"; shift 2 ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
done
OUT_DIR="${OUT_DIR:-$BUILD_DIR}"
mkdir -p "$OUT_DIR"

cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target obs_overhead distance_kernels

echo "== bench_smoke: obs_overhead (2% telemetry gate) =="
"$BUILD_DIR/bench/obs_overhead" --json="$OUT_DIR/BENCH_obs.json"

echo "== bench_smoke: distance_kernels --quick (speedup gate) =="
# The filter matches no gbench case, so only the sweep runs; an
# unmatched filter is not an error for the benchmark library.
"$BUILD_DIR/bench/distance_kernels" --quick \
  --json="$OUT_DIR/BENCH_kernels.json" \
  --benchmark_filter=__skip_gbench__

SPEEDUP=$(awk -F'"speedup_vs_portable": ' '
  /"dim": 768, "batch": 4096/ { split($2, a, "}"); print a[1]; exit }
' "$OUT_DIR/BENCH_kernels.json")

if [[ -z "$SPEEDUP" ]]; then
  echo "bench_smoke: FAIL — l2/768/4096 cell missing from BENCH_kernels.json" >&2
  exit 1
fi
echo "l2 dim=768 batch=4096 speedup_vs_portable=$SPEEDUP"
if ! awk -v s="$SPEEDUP" 'BEGIN { exit !(s >= 1.0) }'; then
  echo "bench_smoke: FAIL — dispatched kernel slower than portable" >&2
  exit 1
fi

echo "bench_smoke: all gates passed"
