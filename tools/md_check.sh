#!/usr/bin/env bash
# Markdown hygiene, enforced by CI (the markdown-hygiene job):
#
#   1. Link rot: every relative link or image target in a tracked *.md
#      file must exist on disk (anchors stripped; external http(s)/
#      mailto links are out of scope — no network in CI).
#   2. Line length: docs/*.md stays within 80 columns, same budget as
#      the code. Only docs/ is checked: the root markdown files predate
#      the budget and carry wide tables/URLs.
#
# docs/METRICS.md has a stronger guard than either check — the
# docs_sync test diffs it against the live metrics registry — but that
# runs under ctest; this script is pure text hygiene, no build needed.
#
# Usage: tools/md_check.sh
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0

# --- 1. relative-link existence over all tracked markdown ------------
while IFS= read -r md; do
  dir=$(dirname "$md")
  # Targets of [text](target) and ![alt](target), one per line. Ignore
  # external schemes and pure in-page anchors.
  while IFS= read -r target; do
    [[ -z "$target" ]] && continue
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"          # strip an anchor suffix
    [[ -z "$path" ]] && continue
    if [[ "$path" = /* ]]; then
      resolved=".$path"           # repo-absolute link
    else
      resolved="$dir/$path"
    fi
    # Links that climb out of the repo address the hosting site (the
    # README's CI badge: ../../actions/...), not the tree — skip them.
    if [[ "$(realpath -m "$resolved")" != "$PWD"/* ]]; then
      continue
    fi
    if [[ ! -e "$resolved" ]]; then
      echo "md_check: $md: broken link -> $target" >&2
      fail=1
    fi
  done < <(grep -oE '\]\(([^)]+)\)' "$md" | sed -E 's/^\]\(//; s/\)$//')
done < <(git ls-files '*.md')

# --- 2. 80-column budget over docs/ ----------------------------------
while IFS= read -r md; do
  if over=$(awk 'length > 80 { printf "%s:%d\n", FILENAME, FNR }' "$md");
  then
    if [[ -n "$over" ]]; then
      echo "md_check: lines over 80 columns:" >&2
      echo "$over" >&2
      fail=1
    fi
  fi
done < <(git ls-files 'docs/*.md')

if [[ "$fail" -ne 0 ]]; then
  echo "md_check: FAILED" >&2
  exit 1
fi
echo "md_check: all markdown checks passed"
