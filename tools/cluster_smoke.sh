#!/usr/bin/env bash
# Cluster smoke: end-to-end check of the router plane (DESIGN.md §14)
# over real processes and real loopback sockets.
#
#   1. Boots three backend shard servers: group 0 = replicas A and B
#      (both serving partition 0/2), group 1 = replica C (partition
#      1/2). A and B publish admin planes, so the router probes them
#      actively; C is health-checked passively.
#   2. Boots `proximity_cli route` over a shard map built from the
#      published ports, then runs a closed-loop client load through the
#      router — every request must come back OK.
#   3. kill -9 one group-0 replica (A) in the middle of a second load.
#      The load must still see every request answered OK (the router
#      retries dead legs on the surviving replica) and the router's
#      /statusz must report the failover.
#   4. Relaunches A on its original ports and waits for the health
#      probe to bring group 0 back to healthy=2 — replacement capacity
#      reattaches with zero intervention.
#   5. Rolling restart: SIGTERM B (graceful drain) during a third load;
#      again zero failed client requests, and B itself must exit 0 with
#      a clean drain.
#   6. SIGTERMs the router and asserts the final stats line reports the
#      failover plus zero frontend protocol errors.
#
# Registered as a ctest test labeled `cluster` (tools/CMakeLists.txt);
# CI's cluster-soak lane runs it directly.
#
# Usage: tools/cluster_smoke.sh [--build-dir DIR]
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
done
CLI="$BUILD_DIR/tools/proximity_cli"
if [[ ! -x "$CLI" ]]; then
  echo "cluster_smoke: $CLI not built" >&2
  exit 2
fi

N=100
CONNS=2
CORPUS=2000

TMP=$(mktemp -d)
PIDS=()
cleanup() {
  for pid in "${PIDS[@]}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$TMP"
}
trap cleanup EXIT

# wait_port FILE PID NAME — waits for an ephemeral port to be
# published, failing fast when the process died instead.
wait_port() {
  local file=$1 pid=$2 name=$3
  for _ in $(seq 1 1200); do
    [[ -s "$file" ]] && return 0
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "cluster_smoke: FAIL — $name exited before publishing a port" >&2
      cat "$TMP/$name.log" >&2 || true
      return 1
    fi
    sleep 0.1
  done
  echo "cluster_smoke: FAIL — $name never published its port" >&2
  return 1
}

# start_backend NAME PARTITION LISTEN ADMIN — boots one shard server.
# LISTEN/ADMIN are either 127.0.0.1:0 (ephemeral, published through
# port files) or the fixed endpoints of a relaunch. ADMIN may be
# "none" for a probe-less replica.
start_backend() {
  local name=$1 part=$2 listen=$3 admin=$4
  local args=(serve --listen "$listen" "port_file=$TMP/$name.port"
              "partition=$part" "corpus=$CORPUS" quiet=true)
  if [[ "$admin" != "none" ]]; then
    args+=(--admin "$admin" "admin_port_file=$TMP/$name.admin_port")
  fi
  "$CLI" "${args[@]}" >"$TMP/$name.log" 2>&1 &
  local pid=$!
  PIDS+=("$pid")
  eval "${name}_PID=$pid"
  wait_port "$TMP/$name.port" "$pid" "$name"
}

echo "== cluster_smoke: starting 3 backends (A+B = group 0, C = group 1) =="
start_backend A 0/2 127.0.0.1:0 127.0.0.1:0
start_backend B 0/2 127.0.0.1:0 127.0.0.1:0
start_backend C 1/2 127.0.0.1:0 none
A_PORT=$(cat "$TMP/A.port"); A_ADMIN=$(cat "$TMP/A.admin_port")
B_PORT=$(cat "$TMP/B.port"); B_ADMIN=$(cat "$TMP/B.admin_port")
C_PORT=$(cat "$TMP/C.port")
echo "backends up: A=:$A_PORT B=:$B_PORT (group 0), C=:$C_PORT (group 1)"

cat >"$TMP/shard_map" <<EOF
# cluster_smoke topology
shard 0 rpc=127.0.0.1:$A_PORT admin=127.0.0.1:$A_ADMIN
shard 0 rpc=127.0.0.1:$B_PORT admin=127.0.0.1:$B_ADMIN
shard 1 rpc=127.0.0.1:$C_PORT
EOF

echo "== cluster_smoke: starting the router =="
"$CLI" route "shard_map=$TMP/shard_map" --listen 127.0.0.1:0 \
  "port_file=$TMP/router.port" \
  --admin 127.0.0.1:0 "admin_port_file=$TMP/router.admin_port" \
  probe_interval_ms=100 replica_retry_ms=300 quiet=true \
  >"$TMP/router.log" 2>&1 &
ROUTER_PID=$!
PIDS+=("$ROUTER_PID")
wait_port "$TMP/router.port" "$ROUTER_PID" router
PORT=$(cat "$TMP/router.port")
ADMIN="http://127.0.0.1:$(cat "$TMP/router.admin_port")"
echo "router up on 127.0.0.1:$PORT"

# check_load LOG — the client must have seen every request answered OK.
check_load() {
  local log=$1 n=$2
  if ! grep -q "sent=$n ok=$n " "$log"; then
    echo "cluster_smoke: FAIL — client did not see $n OK answers" >&2
    cat "$log" >&2
    return 1
  fi
  if ! grep -q "transport_errors=0" "$log"; then
    echo "cluster_smoke: FAIL — client hit transport errors" >&2
    cat "$log" >&2
    return 1
  fi
}

echo "== cluster_smoke: phase 1 — load through the healthy cluster =="
"$CLI" client "connect=127.0.0.1:$PORT" "n=$N" "conns=$CONNS" \
  "corpus=$CORPUS" quiet=true | tee "$TMP/load1.log"
check_load "$TMP/load1.log" "$N"
if ! curl -fsS "$ADMIN/healthz" | grep -q "serving"; then
  echo "cluster_smoke: FAIL — router /healthz did not answer 'serving'" >&2
  exit 1
fi
if ! curl -fsS "$ADMIN/statusz" | grep -q "cluster: groups=2"; then
  echo "cluster_smoke: FAIL — router /statusz lacks the cluster block" >&2
  exit 1
fi

echo "== cluster_smoke: phase 2 — kill -9 replica A under load =="
# Longer load in the background; kill A while it runs. Every request
# must still be answered OK: the router fails dead legs over to B.
N2=$((N * 3))
"$CLI" client "connect=127.0.0.1:$PORT" "n=$N2" "conns=$CONNS" \
  "corpus=$CORPUS" quiet=true >"$TMP/load2.log" 2>&1 &
LOAD_PID=$!
sleep 0.3
kill -9 "$A_PID" 2>/dev/null || true
echo "killed A (pid $A_PID) mid-load"
LOAD_RC=0
wait "$LOAD_PID" || LOAD_RC=$?
cat "$TMP/load2.log"
if [[ "$LOAD_RC" -ne 0 ]]; then
  echo "cluster_smoke: FAIL — load exited $LOAD_RC during the kill" >&2
  exit 1
fi
check_load "$TMP/load2.log" "$N2"

FAILOVERS=$(curl -fsS "$ADMIN/statusz" | grep "^cluster: queries=" |
            sed 's/.*failovers=\([0-9]*\).*/\1/')
if [[ -z "$FAILOVERS" || "$FAILOVERS" -lt 1 ]]; then
  echo "cluster_smoke: FAIL — /statusz reports no failover after the kill" >&2
  curl -fsS "$ADMIN/statusz" >&2 || true
  exit 1
fi
echo "zero failed client requests across the kill; failovers=$FAILOVERS"

echo "== cluster_smoke: phase 3 — relaunch A, wait for probe recovery =="
# Same rpc + admin ports as before, so the static shard map stays
# valid; the health probe must flip group 0 back to healthy=2.
start_backend A 0/2 "127.0.0.1:$A_PORT" "127.0.0.1:$A_ADMIN"
RECOVERED=0
for _ in $(seq 1 100); do
  if curl -fsS "$ADMIN/statusz" | grep -q "backend 0: replicas=2 healthy=2"; then
    RECOVERED=1
    break
  fi
  sleep 0.1
done
if [[ "$RECOVERED" -ne 1 ]]; then
  echo "cluster_smoke: FAIL — group 0 never returned to healthy=2" >&2
  curl -fsS "$ADMIN/statusz" >&2 || true
  exit 1
fi
echo "replica A reattached: group 0 healthy=2"

echo "== cluster_smoke: phase 4 — rolling restart of B under load =="
"$CLI" client "connect=127.0.0.1:$PORT" "n=$N2" "conns=$CONNS" \
  "corpus=$CORPUS" quiet=true >"$TMP/load3.log" 2>&1 &
LOAD_PID=$!
sleep 0.3
kill -TERM "$B_PID"
B_RC=0
wait "$B_PID" || B_RC=$?
LOAD_RC=0
wait "$LOAD_PID" || LOAD_RC=$?
cat "$TMP/load3.log"
if [[ "$B_RC" -ne 0 ]]; then
  echo "cluster_smoke: FAIL — backend B exited $B_RC after SIGTERM" >&2
  cat "$TMP/B.log" >&2
  exit 1
fi
if [[ "$LOAD_RC" -ne 0 ]]; then
  echo "cluster_smoke: FAIL — load exited $LOAD_RC during the drain" >&2
  exit 1
fi
check_load "$TMP/load3.log" "$N2"
echo "zero failed client requests across B's graceful drain"

echo "== cluster_smoke: SIGTERM router drain =="
kill -TERM "$ROUTER_PID"
ROUTER_RC=0
wait "$ROUTER_PID" || ROUTER_RC=$?
cat "$TMP/router.log"
if [[ "$ROUTER_RC" -ne 0 ]]; then
  echo "cluster_smoke: FAIL — router exited $ROUTER_RC after SIGTERM" >&2
  exit 1
fi

fail=0
if ! grep -q "protocol_errors=0" "$TMP/router.log"; then
  echo "cluster_smoke: FAIL — router frontend protocol errors" >&2
  fail=1
fi
if ! grep -qE "^cluster: queries=[0-9]+ .*failovers=[1-9]" "$TMP/router.log"; then
  echo "cluster_smoke: FAIL — final router stats lack the failover" >&2
  fail=1
fi
if [[ "$fail" -ne 0 ]]; then
  exit 1
fi

echo "cluster_smoke: kill, reattach and rolling restart all invisible" \
     "to clients"
