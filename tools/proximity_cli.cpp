// proximity_cli — command-line front end for the library.
//
// Subcommands:
//   sweep      grid sweep (capacity x tolerance) over a workload; the
//              generalized form of the Figure-3 benches
//   run        one pipeline configuration
//   adaptive   one run under the adaptive-tau controller
//   serve      concurrent serving over a sharded index with dynamic
//              microbatching (DESIGN.md §8); with listen=HOST:PORT the
//              same stack fronts the epoll RPC server (DESIGN.md §9)
//   client     closed-loop RPC client against a `serve listen=` server
//   route      cluster router front-end: one endpoint fanning queries
//              over the backend shard servers of a shard map, with
//              replica failover and hedged requests (DESIGN.md §14)
//   trace-gen  write a query trace (TSV) for a workload to a file
//   replay     run one configuration over a previously saved trace
//   info       effective defaults and build information
//
// SIGINT/SIGTERM during `serve` trigger a graceful drain in both modes:
// in-flight work completes, partial metrics are reported, and
// --metrics-out files are still written.
//
// All parameters are key=value pairs; `proximity_cli <cmd> help=true`
// lists the knobs of a subcommand. The one exception is telemetry:
// `--metrics-out FILE` (or `metrics_out=FILE`) writes the end-of-run
// metric snapshot; a `.prom`/`.txt` extension selects Prometheus text
// exposition, anything else the JSON run report. Several files may be
// given comma-separated to get both formats from one run.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "cluster/router.h"
#include "common/config.h"
#include "common/log.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "embed/hash_embedder.h"
#include "index/index_factory.h"
#include "index/sharded_index.h"
#include "llm/answer_model.h"
#include "net/admin.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics_registry.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "rag/batching_driver.h"
#include "tenant/tenant_registry.h"
#include "vecmath/compressed_store.h"
#include "vecmath/kernels.h"
#include "vecmath/quant_kernel_table.h"
#include "rag/experiment.h"
#include "rag/pipeline.h"
#include "workload/benchmark_spec.h"
#include "workload/trace.h"

namespace proximity {
namespace {

WorkloadSpec SpecFor(const std::string& name, std::size_t corpus,
                     std::uint64_t seed) {
  if (name == "mmlu") return MmluLikeSpec(corpus, seed);
  if (name == "medrag") return MedragLikeSpec(corpus, seed);
  throw std::invalid_argument("unknown workload '" + name +
                              "' (use mmlu or medrag)");
}

AnswerModelParams AnswerParamsFor(const std::string& name) {
  return name == "medrag" ? MedragAnswerParams() : MmluAnswerParams();
}

obs::RunReport MakeReport(const Config& cfg, const std::string& command) {
  obs::RunReport report;
  report.command = command;
  report.workload = cfg.GetString("workload", "mmlu");
  report.index_kind = cfg.GetString(
      "index", report.workload == "medrag" ? "flat" : "hnsw");
  return report;
}

// Snapshots the process-wide registry, prints the stage breakdown (unless
// quiet=true) and writes each comma-separated metrics_out path.
void EmitTelemetry(const Config& cfg, obs::RunReport report) {
  obs::PublishRunGauges(report);
  report.snapshot = obs::MetricsRegistry::Default().Snapshot();

  if (!cfg.GetBool("quiet", false)) {
    const std::string table = obs::RenderStageTable(report.snapshot);
    if (!table.empty()) {
      std::fputs("\n-- stage breakdown --\n", stdout);
      std::fputs(table.c_str(), stdout);
      std::fputs(obs::RenderStagePlot(report.snapshot).c_str(), stdout);
    }
  }

  const std::string out = cfg.GetString("metrics_out", "");
  std::size_t start = 0;
  while (start < out.size()) {
    std::size_t comma = out.find(',', start);
    if (comma == std::string::npos) comma = out.size();
    const std::string path = out.substr(start, comma - start);
    if (!path.empty()) {
      obs::WriteRunReport(report, path);
      LogInfo("metrics written -> {}", path);
    }
    start = comma + 1;
  }
}

SweepConfig ConfigFrom(const Config& cfg) {
  const std::string workload = cfg.GetString("workload", "mmlu");
  SweepConfig sc;
  sc.workload_spec = SpecFor(
      workload, static_cast<std::size_t>(cfg.GetInt("corpus", 10000)),
      static_cast<std::uint64_t>(cfg.GetInt("workload_seed", 42)));
  sc.answer_params = AnswerParamsFor(workload);
  sc.index_spec.kind =
      cfg.GetString("index", workload == "medrag" ? "flat" : "hnsw");
  sc.index_spec.hnsw_ef_construction =
      static_cast<std::size_t>(cfg.GetInt("ef_construction", 100));
  sc.index_spec.hnsw_ef_search =
      static_cast<std::size_t>(cfg.GetInt("ef_search", 64));
  sc.index_spec.ivf_nprobe =
      static_cast<std::size_t>(cfg.GetInt("nprobe", 8));
  sc.index_spec.storage = cfg.GetString("storage", "float32");
  sc.index_spec.rerank_factor =
      static_cast<std::size_t>(cfg.GetInt("rerank", 4));
  sc.capacities = cfg.GetIntList("capacities", {10, 50, 100, 200, 300});
  sc.tolerances =
      cfg.GetDoubleList("tolerances", workload == "medrag"
                                          ? std::vector<double>{0, 2, 5, 10}
                                          : std::vector<double>{0, 0.5, 1, 2,
                                                                5, 10});
  sc.num_seeds = static_cast<std::size_t>(cfg.GetInt("seeds", 3));
  sc.top_k = static_cast<std::size_t>(cfg.GetInt("top_k", 10));
  sc.variants_per_question =
      static_cast<std::size_t>(cfg.GetInt("variants", 4));
  sc.eviction = EvictionFromName(cfg.GetString("eviction", "fifo"));
  if (cfg.GetInt("storage_delay_us", 0) > 0) {
    sc.storage = StorageModel{
        .fixed_ns = cfg.GetInt("storage_delay_us", 0) * 1000,
        .per_result_ns = 0};
  }
  return sc;
}

int CmdSweep(const Config& cfg) {
  if (cfg.GetBool("help", false)) {
    std::puts(
        "sweep knobs: workload=mmlu|medrag corpus=N seeds=N\n"
        "  capacities=10,50,... tolerances=0,0.5,... index=flat|hnsw|...\n"
        "  storage=float32|sq8|sq4 rerank=N (compressed primary scan)\n"
        "  eviction=fifo|lru|lfu|random top_k=N variants=N\n"
        "  storage_delay_us=N (slow-storage model) quiet=true\n"
        "  --metrics-out FILE[.prom|.json][,FILE...]");
    return 0;
  }
  SweepRunner runner(ConfigFrom(cfg));
  const auto cells = runner.Run();
  SweepRunner::ToCsv(cells).Write(std::cout);
  std::printf("\n");
  SweepRunner::LatencyReductionSummary(cells).Write(std::cout);
  // A sweep aggregates many runs; the run-level triple stays zero and the
  // snapshot carries the cross-run stage totals.
  EmitTelemetry(cfg, MakeReport(cfg, "sweep"));
  return 0;
}

int CmdRun(const Config& cfg) {
  if (cfg.GetBool("help", false)) {
    std::puts(
        "run knobs: workload, corpus, capacity=N tau=X seed=N plus the\n"
        "  sweep knobs that configure index/workload\n"
        "  --metrics-out FILE[.prom|.json][,FILE...]");
    return 0;
  }
  SweepConfig sc = ConfigFrom(cfg);
  sc.capacities = {cfg.GetInt("capacity", 100)};
  sc.tolerances = {cfg.GetDouble("tau", 2.0)};
  sc.num_seeds = 1;
  SweepRunner runner(sc);
  const RunMetrics m = runner.RunOne(
      sc.capacities[0], sc.tolerances[0],
      static_cast<std::uint64_t>(cfg.GetInt("seed", 1)) == 0
          ? 1
          : static_cast<std::uint64_t>(cfg.GetInt("seed", 1)));
  std::printf("queries=%zu accuracy=%.4f hit_rate=%.4f "
              "mean_latency_ms=%.4f p50=%.4f p99=%.4f relevance=%.3f "
              "misleading=%.3f\n",
              m.queries, m.accuracy, m.hit_rate, m.mean_latency_ms,
              m.p50_latency_ms, m.p99_latency_ms, m.mean_relevance,
              m.mean_misleading);
  obs::RunReport report = MakeReport(cfg, "run");
  report.queries = m.queries;
  report.accuracy = m.accuracy;
  report.hit_rate = m.hit_rate;
  report.mean_latency_ms = m.mean_latency_ms;
  report.p50_latency_ms = m.p50_latency_ms;
  report.p99_latency_ms = m.p99_latency_ms;
  EmitTelemetry(cfg, std::move(report));
  return 0;
}

int CmdAdaptive(const Config& cfg) {
  if (cfg.GetBool("help", false)) {
    std::puts(
        "adaptive knobs: target=0.6 window=N period=N step=X capacity=N\n"
        "  plus the sweep knobs\n"
        "  --metrics-out FILE[.prom|.json][,FILE...] (JSON includes the\n"
        "  per-query tau trajectory)");
    return 0;
  }
  SweepConfig sc = ConfigFrom(cfg);
  sc.num_seeds = 1;
  SweepRunner runner(sc);
  AdaptiveTauOptions opts;
  opts.target_hit_rate = cfg.GetDouble("target", 0.6);
  opts.window = static_cast<std::size_t>(cfg.GetInt("window", 64));
  opts.period = static_cast<std::size_t>(cfg.GetInt("period", 8));
  opts.step = cfg.GetDouble("step", 1.25);
  opts.initial_tau = cfg.GetDouble("initial_tau", 0.5);
  opts.max_tau = cfg.GetDouble("max_tau", 20.0);
  const auto result =
      runner.RunAdaptive(cfg.GetInt("capacity", 200), opts, 1);
  std::printf("accuracy=%.4f hit_rate=%.4f mean_latency_ms=%.4f "
              "final_tau=%.3f mean_tau=%.3f adjustments=%llu\n",
              result.metrics.accuracy, result.metrics.hit_rate,
              result.metrics.mean_latency_ms, result.final_tau,
              result.mean_tau,
              static_cast<unsigned long long>(result.adjustments));
  obs::RunReport report = MakeReport(cfg, "adaptive");
  report.queries = result.metrics.queries;
  report.accuracy = result.metrics.accuracy;
  report.hit_rate = result.metrics.hit_rate;
  report.mean_latency_ms = result.metrics.mean_latency_ms;
  report.p50_latency_ms = result.metrics.p50_latency_ms;
  report.p99_latency_ms = result.metrics.p99_latency_ms;
  report.tau_trajectory = result.tau_trajectory;
  EmitTelemetry(cfg, std::move(report));
  return 0;
}

// SIGINT/SIGTERM stop flag for the synthetic (non-listening) serve mode:
// workers stop claiming stream entries, in-flight batches complete, and
// the partial run still reaches --metrics-out. The handler only stores an
// atomic, which is async-signal-safe; the network mode routes the same
// signals to net::Server::RequestDrain via net::InstallSignalDrain.
std::atomic<bool> g_serve_stop{false};

void ServeStopHandler(int /*signum*/) { g_serve_stop.store(true); }

void InstallServeStop(bool install) {
  struct sigaction sa{};
  sa.sa_handler = install ? ServeStopHandler : SIG_DFL;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

/// Splits "HOST:PORT" (numeric IPv4). Throws on a malformed spec.
std::pair<std::string, std::uint16_t> ParseHostPort(
    const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= spec.size()) {
    throw std::invalid_argument("expected HOST:PORT, got '" + spec + "'");
  }
  const int port = std::stoi(spec.substr(colon + 1));
  if (port < 0 || port > 65535) {
    throw std::invalid_argument("port out of range in '" + spec + "'");
  }
  return {spec.substr(0, colon), static_cast<std::uint16_t>(port)};
}

void PrintDriverStats(const BatchingDriverStats& dstats) {
  std::printf("driver: batches=%llu hits=%llu answer_hits=%llu "
              "retrieved=%llu "
              "coalesced=%llu shed=%llu expired=%llu quota_shed=%llu "
              "flushes(full/timer/drain)=%llu/%llu/%llu\n",
              static_cast<unsigned long long>(dstats.batches),
              static_cast<unsigned long long>(dstats.hits),
              static_cast<unsigned long long>(dstats.answer_hits),
              static_cast<unsigned long long>(dstats.retrieved),
              static_cast<unsigned long long>(dstats.coalesced),
              static_cast<unsigned long long>(dstats.shed),
              static_cast<unsigned long long>(dstats.expired),
              static_cast<unsigned long long>(dstats.quota_shed),
              static_cast<unsigned long long>(dstats.flushes_on_full),
              static_cast<unsigned long long>(dstats.flushes_on_timer),
              static_cast<unsigned long long>(dstats.flushes_on_drain));
}

// One line per tenant, printed after the global driver stats in the
// multi-tenant serve mode.
void PrintTenantStats(
    const std::map<TenantId, BatchingDriverStats>& per_tenant) {
  for (const auto& [id, s] : per_tenant) {
    std::printf("tenant %u: submitted=%llu hits=%llu answer_hits=%llu "
                "retrieved=%llu "
                "coalesced=%llu shed=%llu expired=%llu quota_shed=%llu\n",
                static_cast<unsigned>(id),
                static_cast<unsigned long long>(s.submitted),
                static_cast<unsigned long long>(s.hits),
                static_cast<unsigned long long>(s.answer_hits),
                static_cast<unsigned long long>(s.retrieved),
                static_cast<unsigned long long>(s.coalesced),
                static_cast<unsigned long long>(s.shed),
                static_cast<unsigned long long>(s.expired),
                static_cast<unsigned long long>(s.quota_shed));
  }
}

// /statusz body for the admin plane: the resolved runtime environment
// plus (in network mode) the live per-tenant quotas and queue depths.
// Called from the admin thread — everything it reads is an atomic, a
// short-mutex snapshot, or fixed at startup.
std::string ServeStatusz(const std::string& storage,
                         const std::string& index_desc,
                         const VectorIndex* index, BatchingDriver* driver,
                         TenantRegistry* registry) {
  std::string out;
  char line[320];
  out += "protocol: v" + std::to_string(net::kProtocolVersion) + "\n";
  out += "simd: " + std::string(SimdLevelName(ActiveSimdLevel())) + "\n";
  out += "storage: " + storage + " (quant kernels: " +
         detail::ActiveQuantTable()->name + ")\n";
  out += "index: " + index_desc + "\n";
  // The live-corpus line: generation is read live (mutations bump it),
  // staleness/stale_hits come from the default tenant's cache — the one
  // every tenant shares a policy with in CLI serving.
  if (index != nullptr && index->SupportsMutation()) {
    std::uint64_t stale_hits = 0;
    const char* policy = "serve-stale";
    if (registry != nullptr) {
      ConcurrentProximityCache& cache =
          registry->CacheFor(kDefaultTenant);
      stale_hits = cache.inner_stats().stale_hits;
      policy = StalenessPolicyName(cache.staleness());
    }
    std::snprintf(line, sizeof(line),
                  "mutation: enabled generation=%llu staleness=%s "
                  "stale_hits=%llu\n",
                  static_cast<unsigned long long>(index->generation()),
                  policy,
                  static_cast<unsigned long long>(stale_hits));
    out += line;
  } else {
    out += "mutation: disabled (build-once index)\n";
  }
#if PROXIMITY_OBS_ENABLED
  out += "obs: compiled ON\n";
#else
  out += "obs: compiled OFF\n";
#endif
  if (driver == nullptr || registry == nullptr) return out;
  // The answer-reuse line: whether the driver probes the per-tenant
  // answer caches, and the registry-default τ/capacity they carry
  // (OPERATIONS.md "Answer cache & reuse routing").
  if (driver->options().answer_reuse) {
    const AnswerCacheOptions& aopts = registry->options().answer_defaults;
    std::snprintf(line, sizeof(line),
                  "answer_cache: enabled capacity=%zu tau=%.3f\n",
                  aopts.capacity,
                  static_cast<double>(aopts.tolerance));
    out += line;
  } else {
    out += "answer_cache: disabled\n";
  }
  const auto depths = driver->queue_depths();
  std::snprintf(line, sizeof(line), "queued: %zu\n", driver->pending());
  out += line;
  for (const auto& info : registry->Infos()) {
    const auto depth_it = depths.find(info.id);
    std::snprintf(
        line, sizeof(line),
        "tenant %u (%s): qps=%.1f burst=%.1f max_inflight=%zu "
        "weight=%.2f tau=%.3f cache_entries=%zu hit_rate=%.3f "
        "acache_entries=%zu answer_hits=%llu "
        "inflight=%zu queued=%zu\n",
        static_cast<unsigned>(info.id), info.name.c_str(), info.quota.qps,
        info.quota.burst, info.quota.max_inflight, info.weight,
        static_cast<double>(info.tolerance), info.cache_entries,
        info.cache.HitRate(), info.answer_entries,
        static_cast<unsigned long long>(info.answer.hits), info.inflight,
        depth_it == depths.end() ? std::size_t{0} : depth_it->second);
    out += line;
  }
  return out;
}

int CmdServe(const Config& cfg) {
  if (cfg.GetBool("help", false)) {
    std::puts(
        "serve knobs: workload=mmlu|medrag corpus=N capacity=N tau=X\n"
        "  index=flat|hnsw|... shards=N (0 = one per core) threads=N\n"
        "  partition=I/N (serve only stripe I of an N-way split; the\n"
        "  stripes match shards=N, global ids are corpus rows — the\n"
        "  backend mode for `route`, see DESIGN.md §14)\n"
        "  index=mutable enables live INSERT/DELETE (protocol v4);\n"
        "  staleness=serve-stale|revalidate|invalidate-region (cache\n"
        "  policy when an entry predates the index generation)\n"
        "  storage=float32|sq8|sq4 rerank=N (compressed primary scan)\n"
        "  answer_cache=N answer_tau=X (per-tenant answer-level cache\n"
        "  with grounded reuse routing, network mode; N entries, 0 =\n"
        "  off; DESIGN.md §15, docs/OPERATIONS.md runbook)\n"
        "  max_batch=N max_wait_us=N coalesce=true|false top_k=N\n"
        "  variants=N order=shuffled|grouped|zipf seed=N\n"
        "  --metrics-out FILE[.prom|.json][,FILE...]\n"
        "network mode (--listen HOST:PORT or listen=HOST:PORT):\n"
        "  port_file=PATH (write the bound port; useful with :0)\n"
        "  queue_bound=N (driver admission bound, 0 = unbounded)\n"
        "  max_connections=N max_inflight=N default_deadline_us=N\n"
        "  drain_timeout_ms=N; SIGINT/SIGTERM drain gracefully\n"
        "  --admin HOST:PORT (live introspection plane: /metrics\n"
        "  /healthz /statusz /tracez; admin_port_file=PATH with :0)\n"
        "multi-tenant (network mode): --tenants FILE (tenant roster:\n"
        "  one `id=N name=S qps=X burst=N max_inflight=N capacity=N\n"
        "  tau=X answer_capacity=N answer_tau=X weight=X adaptive=true\n"
        "  target_hit_rate=X` per line);\n"
        "  fair=true|false (weighted deficit-round-robin vs FIFO)");
    return 0;
  }
  const std::string workload_name = cfg.GetString("workload", "mmlu");
  const Workload workload = BuildWorkload(SpecFor(
      workload_name, static_cast<std::size_t>(cfg.GetInt("corpus", 10000)),
      static_cast<std::uint64_t>(cfg.GetInt("workload_seed", 42))));

  QueryStreamOptions sopts;
  const std::string order = cfg.GetString("order", "shuffled");
  sopts.order = order == "grouped"  ? StreamOrder::kGrouped
                : order == "zipf"   ? StreamOrder::kZipf
                                    : StreamOrder::kShuffled;
  sopts.variants_per_question =
      static_cast<std::size_t>(cfg.GetInt("variants", 4));
  sopts.seed = static_cast<std::uint64_t>(cfg.GetInt("stream_seed", 1));
  const auto stream = BuildQueryStream(workload, sopts);

  HashEmbedder embedder;
  std::vector<std::string> texts;
  texts.reserve(stream.size());
  for (const auto& e : stream) texts.push_back(e.text);
  const Matrix embeddings = embedder.EmbedBatch(texts);

  IndexSpec ispec;
  ispec.kind =
      cfg.GetString("index", workload_name == "medrag" ? "flat" : "hnsw");
  ispec.hnsw_ef_construction =
      static_cast<std::size_t>(cfg.GetInt("ef_construction", 100));
  ispec.hnsw_ef_search =
      static_cast<std::size_t>(cfg.GetInt("ef_search", 64));
  ispec.ivf_nprobe = static_cast<std::size_t>(cfg.GetInt("nprobe", 8));
  ispec.storage = cfg.GetString("storage", "float32");
  ispec.rerank_factor = static_cast<std::size_t>(cfg.GetInt("rerank", 4));
  ShardedIndexOptions shard_opts;
  shard_opts.num_shards =
      static_cast<std::size_t>(cfg.GetInt("shards", 0));
  // partition=I/N serves only stripe I of an N-way corpus split with
  // global ids; N such backends behind `route` answer exactly like one
  // process serving the whole corpus (DESIGN.md §14).
  const std::string partition = cfg.GetString("partition", "");
  std::unique_ptr<VectorIndex> index;
  if (!partition.empty()) {
    const auto slash = partition.find('/');
    std::size_t part = 0;
    std::size_t parts = 0;
    if (slash != std::string::npos) {
      try {
        part = static_cast<std::size_t>(
            std::stoul(partition.substr(0, slash)));
        parts = static_cast<std::size_t>(
            std::stoul(partition.substr(slash + 1)));
      } catch (const std::exception&) {
        parts = 0;
      }
    }
    if (parts == 0 || part >= parts) {
      std::fprintf(stderr, "serve: bad partition '%s' (want I/N, I < N)\n",
                   partition.c_str());
      return 2;
    }
    index = BuildPartitionedIndex(ispec, embedder.EmbedBatch(workload.passages),
                                  part, parts, shard_opts);
    LogInfo("serving partition {}/{} over {}", part, parts,
            index->Describe());
  } else {
    index = BuildShardedIndex(ispec, embedder.EmbedBatch(workload.passages),
                              shard_opts);
    LogInfo("serving over {}", index->Describe());
  }

  ProximityCacheOptions copts;
  copts.capacity = static_cast<std::size_t>(cfg.GetInt("capacity", 200));
  copts.tolerance = static_cast<float>(cfg.GetDouble("tau", 2.0));
  copts.metric = index->metric();
  const std::string staleness_name =
      cfg.GetString("staleness", "serve-stale");
  if (!ParseStalenessPolicy(staleness_name, &copts.staleness)) {
    std::fprintf(stderr, "serve: unknown staleness policy '%s'\n",
                 staleness_name.c_str());
    return 2;
  }
  ConcurrentProximityCache cache(embedder.dim(), copts);

  // Answer-level semantic cache above the proximity tier (DESIGN.md
  // §15): `answer_cache=N` entries per tenant, τ defaults to half the
  // proximity τ (answer reuse should be stricter than evidence reuse).
  const std::size_t answer_capacity =
      static_cast<std::size_t>(cfg.GetInt("answer_cache", 0));
  const double answer_tau = cfg.GetDouble(
      "answer_tau", cfg.GetDouble("tau", 2.0) / 2.0);

  BatchingDriverOptions dopts;
  dopts.answer_reuse = answer_capacity > 0;
  dopts.max_batch = static_cast<std::size_t>(cfg.GetInt("max_batch", 32));
  dopts.max_wait_us =
      static_cast<std::uint64_t>(cfg.GetInt("max_wait_us", 200));
  dopts.top_k = static_cast<std::size_t>(cfg.GetInt("top_k", 10));
  dopts.coalesce = cfg.GetBool("coalesce", true);
  dopts.queue_bound =
      static_cast<std::size_t>(cfg.GetInt("queue_bound", 0));
  dopts.fair = cfg.GetBool("fair", true);
  const std::size_t threads =
      static_cast<std::size_t>(cfg.GetInt("threads", 8));

  const std::string listen = cfg.GetString("listen", "");
  if (!listen.empty()) {
    // Network mode: the microbatching stack fronts the epoll RPC server.
    // Requests are routed through a TenantRegistry: per-tenant caches,
    // quotas, and fair batching (DESIGN.md §10). Without a roster every
    // request lands on the always-present default tenant, which keeps the
    // single-tenant behaviour.
    const auto [host, port] = ParseHostPort(listen);
    TenantRegistryOptions topts;
    topts.cache_defaults = copts;
    topts.answer_defaults.metric = copts.metric;
    if (answer_capacity > 0) {
      topts.answer_defaults.capacity = answer_capacity;
      topts.answer_defaults.tolerance = static_cast<float>(answer_tau);
      LogInfo("serve: answer cache enabled (capacity={} tau={})",
              answer_capacity, answer_tau);
    }
    const std::string roster = cfg.GetString("tenants", "");
    // With an explicit roster, unknown tenant ids fall back to the
    // default tenant instead of minting unbounded per-tenant state.
    topts.unknown_policy = roster.empty()
                               ? UnknownTenantPolicy::kAutoRegister
                               : UnknownTenantPolicy::kMapToDefault;
    TenantRegistry registry(embedder.dim(), topts);
    if (!roster.empty()) {
      for (const auto& spec : LoadTenantSpecs(roster)) {
        registry.Register(spec);
      }
      LogInfo("serve: {} tenants registered (unknown ids -> tenant 0)",
              registry.tenant_count());
    }
    BatchingDriver driver(*index, registry, &embedder, dopts);
    if (index->SupportsMutation()) {
      driver.EnableMutation(*index);
      LogInfo("serve: live-corpus mutations enabled (protocol v4)");
    }
    net::ServerOptions nopts;
    nopts.host = host;
    nopts.port = port;
    nopts.max_connections =
        static_cast<std::size_t>(cfg.GetInt("max_connections", 256));
    nopts.max_inflight =
        static_cast<std::size_t>(cfg.GetInt("max_inflight", 1024));
    nopts.default_deadline_us = static_cast<std::uint64_t>(
        cfg.GetInt("default_deadline_us", 0));
    nopts.drain_timeout_ms = static_cast<std::uint64_t>(
        cfg.GetInt("drain_timeout_ms", 10000));
    net::Server server(driver, nopts);
    server.Start();
    const std::string port_file = cfg.GetString("port_file", "");
    if (!port_file.empty()) {
      // Scripts binding :0 read the ephemeral port from here.
      std::ofstream pf(port_file);
      pf << server.port() << "\n";
    }

    // Live introspection plane (--admin HOST:PORT): /healthz follows the
    // drain FSM, /statusz reports quotas and queue depths live.
    std::unique_ptr<net::AdminServer> admin;
    const std::string admin_spec = cfg.GetString("admin", "");
    if (!admin_spec.empty()) {
      const auto [admin_host, admin_port] = ParseHostPort(admin_spec);
      net::AdminHooks hooks;
      net::Server* srv = &server;
      hooks.health = [srv] {
        switch (srv->health()) {
          case net::ServerHealth::kServing:
            return net::HealthState::kServing;
          case net::ServerHealth::kDraining:
            return net::HealthState::kDraining;
          case net::ServerHealth::kStopped: break;
        }
        return net::HealthState::kUnavailable;
      };
      const std::string storage = ispec.storage;
      const std::string index_desc = index->Describe();
      const VectorIndex* vidx = index.get();
      BatchingDriver* drv = &driver;
      TenantRegistry* reg = &registry;
      hooks.statusz = [storage, index_desc, vidx, drv, reg] {
        return ServeStatusz(storage, index_desc, vidx, drv, reg);
      };
      admin = std::make_unique<net::AdminServer>(
          std::move(hooks),
          net::AdminOptions{admin_host, admin_port});
      admin->Start();
      const std::string admin_port_file =
          cfg.GetString("admin_port_file", "");
      if (!admin_port_file.empty()) {
        std::ofstream pf(admin_port_file);
        pf << admin->port() << "\n";
      }
    }

    net::InstallSignalDrain(&server);
    LogInfo("serve: ready on {}:{} (SIGINT/SIGTERM drains)", host,
            server.port());
    server.Join();
    net::InstallSignalDrain(nullptr);
    if (admin) admin->Stop();
    driver.Shutdown();

    const net::ServerStats ns = server.stats();
    const BatchingDriverStats dstats = driver.stats();
    std::printf("net: accepted=%llu requests=%llu responses=%llu "
                "shed=%llu unavailable=%llu deadline_exceeded=%llu "
                "abandoned=%llu protocol_errors=%llu\n",
                static_cast<unsigned long long>(ns.accepted),
                static_cast<unsigned long long>(ns.requests),
                static_cast<unsigned long long>(ns.responses),
                static_cast<unsigned long long>(ns.shed),
                static_cast<unsigned long long>(ns.unavailable),
                static_cast<unsigned long long>(ns.deadline_exceeded),
                static_cast<unsigned long long>(ns.abandoned),
                static_cast<unsigned long long>(ns.protocol_errors));
    PrintDriverStats(dstats);
    const auto per_tenant = driver.tenant_stats();
    if (per_tenant.size() > 1) PrintTenantStats(per_tenant);

    obs::RunReport report = MakeReport(cfg, "serve");
    report.queries = dstats.completed;
    report.hit_rate = dstats.completed > 0
                          ? static_cast<double>(dstats.hits) /
                                static_cast<double>(dstats.completed)
                          : 0.0;
    EmitTelemetry(cfg, std::move(report));
    return 0;
  }

  BatchingDriverStats dstats;
  InstallServeStop(true);
  Stopwatch wall;
  const ConcurrentRunResult result = RunStreamBatched(
      workload, *index, cache, AnswerModel(AnswerParamsFor(workload_name)),
      static_cast<std::uint64_t>(cfg.GetInt("seed", 1)), stream, embeddings,
      threads, dopts, &dstats, &g_serve_stop);
  const double wall_ms = wall.ElapsedMillis();
  InstallServeStop(false);
  if (g_serve_stop.load()) {
    LogWarn("serve: interrupted after {} of {} queries; partial metrics "
            "follow",
            result.metrics.queries, stream.size());
  }
  const double qps =
      wall_ms > 0
          ? static_cast<double>(result.metrics.queries) / (wall_ms / 1e3)
          : 0.0;

  std::printf("queries=%zu threads=%zu qps=%.1f accuracy=%.4f "
              "hit_rate=%.4f mean_latency_ms=%.4f p99=%.4f\n",
              result.metrics.queries, threads, qps, result.metrics.accuracy,
              result.metrics.hit_rate, result.metrics.mean_latency_ms,
              result.metrics.p99_latency_ms);
  PrintDriverStats(dstats);

  obs::RunReport report = MakeReport(cfg, "serve");
  report.queries = result.metrics.queries;
  report.accuracy = result.metrics.accuracy;
  report.hit_rate = result.metrics.hit_rate;
  report.mean_latency_ms = result.metrics.mean_latency_ms;
  report.p50_latency_ms = result.metrics.p50_latency_ms;
  report.p99_latency_ms = result.metrics.p99_latency_ms;
  EmitTelemetry(cfg, std::move(report));
  return 0;
}

int CmdClient(const Config& cfg) {
  if (cfg.GetBool("help", false)) {
    std::puts(
        "client knobs: connect=HOST:PORT n=200 conns=4 deadline_us=0\n"
        "  --tenant ID (tenant id stamped on every request; 0 = default)\n"
        "  trace=true (stamp a fresh trace context on every request so\n"
        "  the server's /tracez stitches client call + server spans)\n"
        "  workload=mmlu|medrag corpus=N variants=N order=... (the text\n"
        "  source; match the server's workload for meaningful hits)\n"
        "live-corpus mutations (server must run index=mutable):\n"
        "  insert_text=STR (send one v4 INSERT; prints the assigned id)\n"
        "  delete_inserted=true (then DELETE the id just assigned)\n"
        "  delete_id=N (send one v4 DELETE of id N)\n"
        "  A mutation invocation performs only the mutations and exits\n"
        "  (no query loop); exit is non-zero unless every round-trip OK.\n"
        "Closed loop: each connection sends its next request as soon as\n"
        "the previous response arrives. Prints client-observed latency\n"
        "percentiles split by cache hit vs miss. Exits non-zero when any\n"
        "request did not complete OK (per-status table on stderr).");
    return 0;
  }
  const std::string connect = cfg.GetString("connect", "");
  if (connect.empty()) {
    std::fputs("client: connect=HOST:PORT is required\n", stderr);
    return 2;
  }
  const auto [host, port] = ParseHostPort(connect);
  const std::size_t total = static_cast<std::size_t>(cfg.GetInt("n", 200));
  const std::size_t conns =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   cfg.GetInt("conns", 4)));
  const std::uint64_t deadline_us =
      static_cast<std::uint64_t>(cfg.GetInt("deadline_us", 0));
  const auto tenant = static_cast<TenantId>(cfg.GetInt("tenant", 0));
  const bool trace = cfg.GetBool("trace", false);

  // Mutation round-trip mode: one connection, INSERT and/or DELETE,
  // parseable one-line results, then exit — the scripted building block
  // of tools/serve_smoke.sh's churn section.
  const std::string insert_text = cfg.GetString("insert_text", "");
  const long long delete_id = cfg.GetInt("delete_id", -1);
  const bool delete_inserted = cfg.GetBool("delete_inserted", false);
  if (!insert_text.empty() || delete_id >= 0) {
    net::Client client;
    if (!client.Connect(host, port)) {
      std::fputs("client: connect failed\n", stderr);
      return 2;
    }
    int failures = 0;
    VectorId inserted = kInvalidVector;
    std::uint64_t next_id = 1;
    if (!insert_text.empty()) {
      net::Request req;
      req.id = next_id++;
      req.tenant = tenant;
      req.mutation_op = net::kMutationInsert;
      req.text = insert_text;
      net::Response resp;
      if (!client.Call(req, &resp)) {
        std::fputs("client: transport error on INSERT\n", stderr);
        return 1;
      }
      if (resp.status == RequestStatus::kOk && !resp.documents.empty()) {
        inserted = resp.documents[0];
      } else {
        ++failures;
      }
      std::printf("insert: status=%s id=%lld\n",
                  RequestStatusName(resp.status),
                  static_cast<long long>(inserted));
    }
    const VectorId target =
        delete_id >= 0 ? static_cast<VectorId>(delete_id) : inserted;
    if (delete_id >= 0 || (delete_inserted && inserted != kInvalidVector)) {
      net::Request req;
      req.id = next_id++;
      req.tenant = tenant;
      req.mutation_op = net::kMutationDelete;
      req.mutation_target = static_cast<std::uint64_t>(target);
      net::Response resp;
      if (!client.Call(req, &resp)) {
        std::fputs("client: transport error on DELETE\n", stderr);
        return 1;
      }
      if (resp.status != RequestStatus::kOk) ++failures;
      std::printf("delete: status=%s id=%lld\n",
                  RequestStatusName(resp.status),
                  static_cast<long long>(target));
    }
    return failures == 0 ? 0 : 1;
  }

  const Workload workload = BuildWorkload(SpecFor(
      cfg.GetString("workload", "mmlu"),
      static_cast<std::size_t>(cfg.GetInt("corpus", 10000)),
      static_cast<std::uint64_t>(cfg.GetInt("workload_seed", 42))));
  QueryStreamOptions sopts;
  const std::string order = cfg.GetString("order", "shuffled");
  sopts.order = order == "grouped"  ? StreamOrder::kGrouped
                : order == "zipf"   ? StreamOrder::kZipf
                                    : StreamOrder::kShuffled;
  sopts.variants_per_question =
      static_cast<std::size_t>(cfg.GetInt("variants", 4));
  sopts.seed = static_cast<std::uint64_t>(cfg.GetInt("stream_seed", 1));
  const auto stream = BuildQueryStream(workload, sopts);
  if (stream.empty()) {
    std::fputs("client: empty query stream\n", stderr);
    return 2;
  }

  struct ConnResult {
    LatencyHistogram all, hit, miss;
    std::uint64_t ok = 0, deadline = 0, shed = 0, unavailable = 0,
                  other = 0, transport = 0;
  };
  std::vector<ConnResult> results(conns);
  std::vector<std::thread> threads;
  threads.reserve(conns);
  Stopwatch wall;
  for (std::size_t c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      ConnResult& r = results[c];
      net::Client client;
      if (!client.Connect(host, port)) {
        r.transport = total / conns + 1;
        return;
      }
      // Static request partition; ids are globally unique across conns.
      for (std::size_t i = c; i < total; i += conns) {
        net::Request req;
        req.id = static_cast<std::uint64_t>(i) + 1;
        req.deadline_us = deadline_us;
        req.tenant = tenant;
        req.text = stream[i % stream.size()].text;
        net::Response resp;
        Stopwatch sw;
        bool called;
        {
          // trace=true: a fresh root context per request; Client::Call
          // picks it up, stamps the frame (protocol v3 trace field) and
          // emits the client-call span. A no-op with PROXIMITY_OBS=OFF
          // (NewTraceId() returns 0 -> context inactive).
          const obs::ScopedTraceContext scope(
              trace ? obs::TraceContext{obs::NewTraceId(), 0}
                    : obs::TraceContext{});
          called = client.Call(req, &resp);
        }
        if (!called) {
          ++r.transport;
          break;  // connection is gone; stop this loop
        }
        const auto ns = static_cast<Nanos>(sw.ElapsedNanos());
        r.all.Record(ns);
        switch (resp.status) {
          case RequestStatus::kOk:
            ++r.ok;
            (resp.cache_hit() ? r.hit : r.miss).Record(ns);
            break;
          case RequestStatus::kDeadlineExceeded: ++r.deadline; break;
          case RequestStatus::kResourceExhausted: ++r.shed; break;
          case RequestStatus::kUnavailable: ++r.unavailable; break;
          default: ++r.other; break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall_ms = wall.ElapsedMillis();

  ConnResult merged;
  for (const auto& r : results) {
    merged.all.Merge(r.all);
    merged.hit.Merge(r.hit);
    merged.miss.Merge(r.miss);
    merged.ok += r.ok;
    merged.deadline += r.deadline;
    merged.shed += r.shed;
    merged.unavailable += r.unavailable;
    merged.other += r.other;
    merged.transport += r.transport;
  }
  const double qps =
      wall_ms > 0
          ? static_cast<double>(merged.all.count()) / (wall_ms / 1e3)
          : 0.0;
  std::printf("client: sent=%llu ok=%llu deadline_exceeded=%llu "
              "shed=%llu unavailable=%llu other=%llu transport_errors=%llu "
              "qps=%.1f\n",
              static_cast<unsigned long long>(merged.all.count()),
              static_cast<unsigned long long>(merged.ok),
              static_cast<unsigned long long>(merged.deadline),
              static_cast<unsigned long long>(merged.shed),
              static_cast<unsigned long long>(merged.unavailable),
              static_cast<unsigned long long>(merged.other),
              static_cast<unsigned long long>(merged.transport), qps);
  std::printf("latency all:  %s\n", merged.all.Summary().c_str());
  if (merged.hit.count() > 0) {
    std::printf("latency hit:  %s\n", merged.hit.Summary().c_str());
  }
  if (merged.miss.count() > 0) {
    std::printf("latency miss: %s\n", merged.miss.Summary().c_str());
  }
  // Scriptable failure contract: any request that did not complete OK
  // makes the client exit non-zero, with a per-status breakdown on
  // stderr (stdout keeps the parseable summary lines above).
  const std::uint64_t failed = merged.deadline + merged.shed +
                               merged.unavailable + merged.other +
                               merged.transport;
  if (failed > 0) {
    std::fprintf(stderr, "client: %llu of %llu requests failed\n",
                 static_cast<unsigned long long>(failed),
                 static_cast<unsigned long long>(merged.all.count() +
                                                 merged.transport));
    const struct {
      const char* status;
      std::uint64_t count;
    } table[] = {
        {RequestStatusName(RequestStatus::kDeadlineExceeded),
         merged.deadline},
        {RequestStatusName(RequestStatus::kResourceExhausted), merged.shed},
        {RequestStatusName(RequestStatus::kUnavailable),
         merged.unavailable},
        {"OTHER", merged.other},
        {"TRANSPORT_ERROR", merged.transport},
    };
    for (const auto& row : table) {
      if (row.count == 0) continue;
      std::fprintf(stderr, "  %-20s %llu\n", row.status,
                   static_cast<unsigned long long>(row.count));
    }
  }
  return failed == 0 ? 0 : 1;
}

int CmdRoute(const Config& cfg) {
  if (cfg.GetBool("help", false)) {
    std::puts(
        "route knobs: shard_map=FILE (required; one replica per line:\n"
        "  `shard G rpc=HOST:PORT [admin=HOST:PORT]`, see OPERATIONS.md)\n"
        "  --listen HOST:PORT (default 127.0.0.1:0)\n"
        "  port_file=PATH (write the bound port; useful with :0)\n"
        "  workers=N connect_timeout_ms=N recv_timeout_ms=N\n"
        "  hedge=true|false hedge_quantile=X hedge_min_us=N\n"
        "  hedge_warmup=N (leg latencies per group before hedging arms)\n"
        "  probe_interval_ms=N probe_timeout_ms=N replica_retry_ms=N\n"
        "  max_leg_attempts=N\n"
        "  max_connections=N max_inflight=N default_deadline_us=N\n"
        "  drain_timeout_ms=N; SIGINT/SIGTERM drain gracefully\n"
        "  --admin HOST:PORT (/metrics /healthz /statusz;\n"
        "  admin_port_file=PATH with :0)\n"
        "Backends are `serve partition=I/N --listen ...` processes; every\n"
        "replica of group g must serve partition g/G of the same workload\n"
        "configuration (DESIGN.md §14).");
    return 0;
  }
  const std::string map_path = cfg.GetString("shard_map", "");
  if (map_path.empty()) {
    std::fputs("route: shard_map=FILE is required\n", stderr);
    return 2;
  }
  cluster::ShardMap map = cluster::ShardMap::Load(map_path);

  cluster::RouterOptions ropts;
  const auto [host, port] =
      ParseHostPort(cfg.GetString("listen", "127.0.0.1:0"));
  ropts.server.host = host;
  ropts.server.port = port;
  ropts.server.max_connections =
      static_cast<std::size_t>(cfg.GetInt("max_connections", 256));
  ropts.server.max_inflight =
      static_cast<std::size_t>(cfg.GetInt("max_inflight", 1024));
  ropts.server.default_deadline_us =
      static_cast<std::uint64_t>(cfg.GetInt("default_deadline_us", 0));
  ropts.server.drain_timeout_ms =
      static_cast<std::uint64_t>(cfg.GetInt("drain_timeout_ms", 10000));
  ropts.workers = static_cast<std::size_t>(cfg.GetInt("workers", 4));
  ropts.connect_timeout_ms =
      static_cast<int>(cfg.GetInt("connect_timeout_ms", 1000));
  ropts.recv_timeout_ms =
      static_cast<int>(cfg.GetInt("recv_timeout_ms", 5000));
  ropts.hedge = cfg.GetBool("hedge", true);
  ropts.hedge_quantile = cfg.GetDouble("hedge_quantile", 0.99);
  ropts.hedge_min_us =
      static_cast<std::uint64_t>(cfg.GetInt("hedge_min_us", 500));
  ropts.hedge_warmup =
      static_cast<std::size_t>(cfg.GetInt("hedge_warmup", 16));
  ropts.probe_interval_ms =
      static_cast<int>(cfg.GetInt("probe_interval_ms", 200));
  ropts.probe_timeout_ms =
      static_cast<int>(cfg.GetInt("probe_timeout_ms", 500));
  ropts.replica_retry_ms =
      static_cast<int>(cfg.GetInt("replica_retry_ms", 1000));
  ropts.max_leg_attempts =
      static_cast<std::size_t>(cfg.GetInt("max_leg_attempts", 3));

  cluster::Router router(std::move(map), ropts);
  router.Start();
  const std::string port_file = cfg.GetString("port_file", "");
  if (!port_file.empty()) {
    // Scripts binding :0 read the ephemeral port from here.
    std::ofstream pf(port_file);
    pf << router.port() << "\n";
  }

  // The admin plane mirrors `serve --admin`: /healthz follows the
  // front-end drain FSM (a probing upstream router would see this
  // router drain, too), /statusz adds per-group replica health.
  std::unique_ptr<net::AdminServer> admin;
  const std::string admin_spec = cfg.GetString("admin", "");
  if (!admin_spec.empty()) {
    const auto [admin_host, admin_port] = ParseHostPort(admin_spec);
    net::AdminHooks hooks;
    cluster::Router* rt = &router;
    hooks.health = [rt] {
      switch (rt->health()) {
        case net::ServerHealth::kServing:
          return net::HealthState::kServing;
        case net::ServerHealth::kDraining:
          return net::HealthState::kDraining;
        case net::ServerHealth::kStopped: break;
      }
      return net::HealthState::kUnavailable;
    };
    hooks.statusz = [rt] { return rt->Statusz(); };
    admin = std::make_unique<net::AdminServer>(
        std::move(hooks), net::AdminOptions{admin_host, admin_port});
    admin->Start();
    const std::string admin_port_file =
        cfg.GetString("admin_port_file", "");
    if (!admin_port_file.empty()) {
      std::ofstream pf(admin_port_file);
      pf << admin->port() << "\n";
    }
  }

  net::InstallSignalDrain(&router.frontend());
  LogInfo("route: ready on {}:{} with {} shard groups "
          "(SIGINT/SIGTERM drains)",
          host, router.port(), router.map().num_groups());
  router.Join();
  net::InstallSignalDrain(nullptr);
  if (admin) admin->Stop();

  const net::ServerStats ns = router.server_stats();
  std::printf("net: accepted=%llu requests=%llu responses=%llu "
              "shed=%llu unavailable=%llu deadline_exceeded=%llu "
              "abandoned=%llu protocol_errors=%llu\n",
              static_cast<unsigned long long>(ns.accepted),
              static_cast<unsigned long long>(ns.requests),
              static_cast<unsigned long long>(ns.responses),
              static_cast<unsigned long long>(ns.shed),
              static_cast<unsigned long long>(ns.unavailable),
              static_cast<unsigned long long>(ns.deadline_exceeded),
              static_cast<unsigned long long>(ns.abandoned),
              static_cast<unsigned long long>(ns.protocol_errors));
  // The same lines /statusz serves live, as the final stats block —
  // tools/cluster_smoke.sh greps these.
  std::fputs(router.Statusz().c_str(), stdout);

  const cluster::RouterStats rs = router.stats();
  obs::RunReport report = MakeReport(cfg, "route");
  report.queries = rs.queries;
  EmitTelemetry(cfg, std::move(report));
  return 0;
}

int CmdTraceGen(const Config& cfg) {
  if (cfg.GetBool("help", false)) {
    std::puts(
        "trace-gen knobs: workload=mmlu|medrag corpus=N out=PATH\n"
        "  order=shuffled|grouped|zipf variants=N stream_seed=N\n"
        "  zipf_length=N zipf_exponent=X");
    return 0;
  }
  const std::string out = cfg.GetString("out", "");
  if (out.empty()) {
    std::fputs("trace-gen: out=PATH is required\n", stderr);
    return 2;
  }
  const Workload workload = BuildWorkload(SpecFor(
      cfg.GetString("workload", "mmlu"),
      static_cast<std::size_t>(cfg.GetInt("corpus", 10000)),
      static_cast<std::uint64_t>(cfg.GetInt("workload_seed", 42))));
  QueryStreamOptions sopts;
  const std::string order = cfg.GetString("order", "shuffled");
  sopts.order = order == "grouped"  ? StreamOrder::kGrouped
                : order == "zipf"   ? StreamOrder::kZipf
                                    : StreamOrder::kShuffled;
  sopts.variants_per_question =
      static_cast<std::size_t>(cfg.GetInt("variants", 4));
  sopts.zipf_length =
      static_cast<std::size_t>(cfg.GetInt("zipf_length", 2000));
  sopts.zipf_exponent = cfg.GetDouble("zipf_exponent", 1.0);
  sopts.seed = static_cast<std::uint64_t>(cfg.GetInt("stream_seed", 1));
  const auto stream = BuildQueryStream(workload, sopts);
  SaveTraceToFile(stream, out);
  std::printf("wrote %zu queries -> %s\n", stream.size(), out.c_str());
  return 0;
}

int CmdReplay(const Config& cfg) {
  if (cfg.GetBool("help", false)) {
    std::puts(
        "replay knobs: trace=PATH plus the run knobs (workload, corpus,\n"
        "  capacity, tau, index, ...). The workload parameters must match\n"
        "  the ones the trace was generated with.");
    return 0;
  }
  const std::string path = cfg.GetString("trace", "");
  if (path.empty()) {
    std::fputs("replay: trace=PATH is required\n", stderr);
    return 2;
  }
  const std::string workload_name = cfg.GetString("workload", "mmlu");
  const Workload workload = BuildWorkload(SpecFor(
      workload_name, static_cast<std::size_t>(cfg.GetInt("corpus", 10000)),
      static_cast<std::uint64_t>(cfg.GetInt("workload_seed", 42))));
  const auto stream = LoadTraceFromFile(path, workload.questions.size());

  HashEmbedder embedder;
  IndexSpec ispec;
  ispec.kind =
      cfg.GetString("index", workload_name == "medrag" ? "flat" : "hnsw");
  ispec.hnsw_ef_construction =
      static_cast<std::size_t>(cfg.GetInt("ef_construction", 100));
  ispec.storage = cfg.GetString("storage", "float32");
  ispec.rerank_factor = static_cast<std::size_t>(cfg.GetInt("rerank", 4));
  auto index = BuildIndex(ispec, embedder.EmbedBatch(workload.passages));

  std::vector<std::string> texts;
  for (const auto& e : stream) texts.push_back(e.text);
  const Matrix embeddings = embedder.EmbedBatch(texts);

  ProximityCacheOptions copts;
  copts.capacity = static_cast<std::size_t>(cfg.GetInt("capacity", 100));
  copts.tolerance = static_cast<float>(cfg.GetDouble("tau", 2.0));
  copts.metric = index->metric();
  ProximityCache cache(embedder.dim(), copts);
  Retriever retriever(index.get(), &cache, nullptr,
                      {.top_k = static_cast<std::size_t>(
                           cfg.GetInt("top_k", 10))});
  RagPipeline pipeline(&workload, &embedder, &retriever,
                       AnswerModel(AnswerParamsFor(workload_name)),
                       static_cast<std::uint64_t>(cfg.GetInt("seed", 1)));
  const RunMetrics m = pipeline.RunStream(stream, embeddings);
  std::printf("replayed %zu queries: accuracy=%.4f hit_rate=%.4f "
              "mean_latency_ms=%.4f\n",
              m.queries, m.accuracy, m.hit_rate, m.mean_latency_ms);
  obs::RunReport report = MakeReport(cfg, "replay");
  report.queries = m.queries;
  report.accuracy = m.accuracy;
  report.hit_rate = m.hit_rate;
  report.mean_latency_ms = m.mean_latency_ms;
  report.p50_latency_ms = m.p50_latency_ms;
  report.p99_latency_ms = m.p99_latency_ms;
  EmitTelemetry(cfg, std::move(report));
  return 0;
}

int CmdInfo(const Config& cfg) {
  std::puts("proximity_cli — Proximity approximate RAG cache (C++ repro)");
  std::puts("workloads: mmlu (131 q, HNSW), medrag (200 q, FLAT)");
  std::puts("indexes:   flat hnsw vamana ivf_flat ivf_pq");
  std::puts("eviction:  fifo (paper) lru lfu random clock");
  std::puts("subcommands: sweep run adaptive serve client route "
            "trace-gen replay info");
  std::puts("cluster:    route shard_map=FILE (router front-end over\n"
            "            `serve partition=I/N` backends; DESIGN.md §14)");
  std::puts("telemetry:  --metrics-out FILE (.prom/.txt -> Prometheus,");
  std::puts("            else JSON run report; comma-separate for both)");
  std::puts("net:        serve --listen HOST:PORT / client connect=...");
  std::puts("admin:      serve --admin HOST:PORT (/metrics /healthz "
            "/statusz /tracez)");
  std::printf("protocol:   v%u (length-prefixed PRXQ/PRXR; v1 frames "
              "accepted; optional trace field)\n",
              static_cast<unsigned>(net::kProtocolVersion));
  // With `--tenants FILE` the roster is parsed (not served) so operators
  // can validate a config and see the resulting tenant count up front.
  std::size_t tenants = 1;  // the default tenant always exists
  const std::string roster = cfg.GetString("tenants", "");
  if (!roster.empty()) {
    std::set<TenantId> ids{kDefaultTenant};
    for (const auto& spec : LoadTenantSpecs(roster)) ids.insert(spec.id);
    tenants = ids.size();
  }
  std::printf("tenants:    %zu registered (default tenant 0%s)\n", tenants,
              roster.empty() ? "" : ", roster validated");
  // The resolved runtime environment: which SIMD tier the dispatcher
  // actually picked on this host, and the parallelism it will use.
  std::printf("simd:       %s (runtime-dispatched)\n",
              std::string(SimdLevelName(ActiveSimdLevel())).c_str());
  // Active storage layout: what `storage=` resolves to for this
  // invocation, plus the quantized-kernel tier the dispatcher picked
  // (tracks the SIMD tier above, including PROXIMITY_SIMD overrides).
  {
    const std::string storage = cfg.GetString("storage", "float32");
    StorageLayout layout = StorageLayout::kFloat32;
    const std::string name = ParseStorageLayout(storage, &layout)
                                 ? std::string(StorageLayoutName(layout))
                                 : "unknown";
    std::printf("storage:    %s layout (quant kernels: %s)\n", name.c_str(),
                detail::ActiveQuantTable()->name);
  }
  std::printf("cores:      %u hardware threads\n",
              std::thread::hardware_concurrency());
#if PROXIMITY_OBS_ENABLED
  std::puts("obs:        compiled ON (spans + stage histograms active)");
#else
  std::puts("obs:        compiled OFF (spans are no-ops)");
#endif
  return 0;
}

int Main(int argc, char** argv) {
  // Everything else is key=value, but the telemetry flag follows the
  // conventional CLI spelling; rewrite it before parsing.
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    constexpr std::string_view kMetricsPrefix = "--metrics-out=";
    constexpr std::string_view kListenPrefix = "--listen=";
    constexpr std::string_view kAdminPrefix = "--admin=";
    constexpr std::string_view kTenantsPrefix = "--tenants=";
    constexpr std::string_view kTenantPrefix = "--tenant=";
    if (arg == "--metrics-out" && i + 1 < argc) {
      arg = std::string("metrics_out=") + argv[++i];
    } else if (arg.rfind(kMetricsPrefix, 0) == 0) {
      arg = "metrics_out=" + arg.substr(kMetricsPrefix.size());
    } else if (arg == "--admin" && i + 1 < argc) {
      arg = std::string("admin=") + argv[++i];
    } else if (arg.rfind(kAdminPrefix, 0) == 0) {
      arg = "admin=" + arg.substr(kAdminPrefix.size());
    } else if (arg == "--listen" && i + 1 < argc) {
      arg = std::string("listen=") + argv[++i];
    } else if (arg.rfind(kListenPrefix, 0) == 0) {
      arg = "listen=" + arg.substr(kListenPrefix.size());
    } else if (arg == "--tenants" && i + 1 < argc) {
      arg = std::string("tenants=") + argv[++i];
    } else if (arg.rfind(kTenantsPrefix, 0) == 0) {
      arg = "tenants=" + arg.substr(kTenantsPrefix.size());
    } else if (arg == "--tenant" && i + 1 < argc) {
      arg = std::string("tenant=") + argv[++i];
    } else if (arg.rfind(kTenantPrefix, 0) == 0) {
      arg = "tenant=" + arg.substr(kTenantPrefix.size());
    }
    args.push_back(std::move(arg));
  }
  std::vector<char*> argp;
  argp.reserve(args.size());
  for (auto& a : args) argp.push_back(a.data());
  const Config cfg =
      Config::FromArgs(static_cast<int>(argp.size()), argp.data());
  if (cfg.GetBool("quiet", false)) SetLogLevel(LogLevel::kWarn);
  const std::string cmd =
      cfg.positional().empty() ? "info" : cfg.positional().front();
  if (cmd == "sweep") return CmdSweep(cfg);
  if (cmd == "run") return CmdRun(cfg);
  if (cmd == "adaptive") return CmdAdaptive(cfg);
  if (cmd == "serve") return CmdServe(cfg);
  if (cmd == "client") return CmdClient(cfg);
  if (cmd == "route") return CmdRoute(cfg);
  if (cmd == "trace-gen") return CmdTraceGen(cfg);
  if (cmd == "replay") return CmdReplay(cfg);
  if (cmd == "info" || cmd == "help") return CmdInfo(cfg);
  std::fprintf(stderr, "unknown subcommand '%s' (try: info)\n", cmd.c_str());
  return 2;
}

}  // namespace
}  // namespace proximity

int main(int argc, char** argv) {
  try {
    return proximity::Main(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
