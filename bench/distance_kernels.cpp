// A-kernels (DESIGN.md): throughput of the SIMD distance kernels that both
// the flat index scan and the cache key scan are built on (§2.2 premise:
// NNS cost is dominated by distance evaluations; §4.1: the original uses
// Rust Portable-SIMD for the same purpose).
//
// The binary has two halves:
//   1. A portable-vs-dispatched comparison sweep (per metric, dims
//      64/128/768, batch sizes 1/64/4096) that writes machine-readable
//      results to BENCH_kernels.json (path override: --json=PATH).
//   2. The google-benchmark suite below, run on whatever remaining CLI
//      flags google-benchmark understands.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "vecmath/kernels.h"

namespace proximity {
namespace {

// --quick: reduced calibration budget, fewer reps, and a sweep
// restricted to the l2 cells the CI smoke gate checks (dim 768,
// batches 64/4096). Keeps tools/bench_smoke.sh under a minute.
bool g_quick = false;

std::vector<float> RandomVec(std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(dim);
  for (auto& x : v) x = static_cast<float>(rng.Gaussian(0, 1));
  return v;
}

void BM_L2Squared(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto a = RandomVec(dim, 1), b = RandomVec(dim, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(L2SquaredDistance(a, b));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim) * 2 * 4);
}
BENCHMARK(BM_L2Squared)->Arg(64)->Arg(128)->Arg(256)->Arg(768)->Arg(1536);

void BM_InnerProduct(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto a = RandomVec(dim, 3), b = RandomVec(dim, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(InnerProduct(a, b));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim) * 2 * 4);
}
BENCHMARK(BM_InnerProduct)->Arg(64)->Arg(768)->Arg(1536);

void BM_Cosine(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto a = RandomVec(dim, 5), b = RandomVec(dim, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CosineDistance(a, b));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim) * 2 * 4);
}
BENCHMARK(BM_Cosine)->Arg(64)->Arg(768)->Arg(1536);

// The level the dispatcher picked at startup, pinned before any benchmark
// or sweep toggles the active table.
SimdLevel DefaultDispatchLevel() {
  static const SimdLevel level = ActiveSimdLevel();
  return level;
}

// The batched scan used by FlatIndex and the cache (row-major block),
// parameterized by SIMD level: range(0) = rows, range(1) = SimdLevel
// (-1 = whatever the dispatcher picked at startup).
void BM_BatchDistance(benchmark::State& state) {
  constexpr std::size_t kDim = 768;
  const auto rows = static_cast<std::size_t>(state.range(0));
  const SimdLevel level = state.range(1) < 0
                              ? DefaultDispatchLevel()
                              : static_cast<SimdLevel>(state.range(1));
  if (!SetActiveSimdLevel(level)) {
    state.SkipWithError("SIMD level unsupported on this host");
    return;
  }
  Rng rng(7);
  std::vector<float> base(rows * kDim);
  for (auto& x : base) x = static_cast<float>(rng.Gaussian(0, 1));
  const auto query = RandomVec(kDim, 8);
  std::vector<float> out(rows);
  for (auto _ : state) {
    BatchDistance(Metric::kL2, query, base.data(), rows, kDim, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows));
  state.SetLabel(std::string(SimdLevelName(level)));
}
BENCHMARK(BM_BatchDistance)
    ->ArgsProduct({{100, 1000, 10000},
                   {static_cast<std::int64_t>(SimdLevel::kPortable), -1}});

// ---------------------------------------------------------------------------
// Portable-vs-dispatched sweep + BENCH_kernels.json emission.
// ---------------------------------------------------------------------------

struct SweepResult {
  const char* metric;
  std::size_t dim;
  std::size_t batch;
  double portable_ns;
  double dispatched_ns;
  double speedup;
  // Effective scan bandwidth (base rows + one query read per call,
  // decimal GB/s): how close each kernel gets to memory-bound.
  double portable_gbps;
  double dispatched_gbps;
};

double NowNs() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::nano>(
             Clock::now().time_since_epoch())
      .count();
}

// One timed run of `iters` back-to-back batch scans, in ns per call.
double TimedRun(Metric metric, const std::vector<float>& query,
                const std::vector<float>& base, std::size_t batch,
                std::size_t dim, std::vector<float>& out, std::size_t iters) {
  const double t0 = NowNs();
  for (std::size_t i = 0; i < iters; ++i) {
    BatchDistance(metric, query, base.data(), batch, dim, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  return (NowNs() - t0) / static_cast<double>(iters);
}

// Iteration count that makes one timed run last >= 25ms, so the steady
// clock resolves well above its granularity.
std::size_t CalibrateIters(Metric metric, const std::vector<float>& query,
                           const std::vector<float>& base, std::size_t batch,
                           std::size_t dim, std::vector<float>& out) {
  std::size_t iters = 1;
  for (;;) {
    const double per_call = TimedRun(metric, query, base, batch, dim, out,
                                     iters);
    if (per_call * static_cast<double>(iters) >= (g_quick ? 2.5e6 : 2.5e7) ||
        iters >= (1ull << 28)) {
      return iters;
    }
    iters *= 4;
  }
}

struct PairedTimes {
  double portable_ns;
  double dispatched_ns;
  double speedup;
};

// Portable and dispatched runs alternate back-to-back, so scheduler noise
// on a shared machine hits both sides of each pair roughly equally; the
// reported speedup is the median of the per-pair ratios.
PairedTimes MeasurePair(Metric metric, SimdLevel dispatched_level,
                        const std::vector<float>& query,
                        const std::vector<float>& base, std::size_t batch,
                        std::size_t dim, std::vector<float>& out) {
  SetActiveSimdLevel(SimdLevel::kPortable);
  const std::size_t p_iters =
      CalibrateIters(metric, query, base, batch, dim, out);
  SetActiveSimdLevel(dispatched_level);
  const std::size_t d_iters =
      CalibrateIters(metric, query, base, batch, dim, out);

  constexpr int kMaxReps = 11;
  const int kReps = g_quick ? 5 : kMaxReps;
  double p[kMaxReps], d[kMaxReps], ratio[kMaxReps];
  for (int rep = 0; rep < kReps; ++rep) {
    SetActiveSimdLevel(SimdLevel::kPortable);
    p[rep] = TimedRun(metric, query, base, batch, dim, out, p_iters);
    SetActiveSimdLevel(dispatched_level);
    d[rep] = TimedRun(metric, query, base, batch, dim, out, d_iters);
    ratio[rep] = d[rep] > 0.0 ? p[rep] / d[rep] : 0.0;
  }
  std::sort(p, p + kReps);
  std::sort(d, d + kReps);
  std::sort(ratio, ratio + kReps);
  return {p[kReps / 2], d[kReps / 2], ratio[kReps / 2]};
}

std::vector<SweepResult> RunSweep() {
  struct MetricCase {
    Metric metric;
    const char* name;
  };
  const std::vector<MetricCase> metrics =
      g_quick ? std::vector<MetricCase>{{Metric::kL2, "l2"}}
              : std::vector<MetricCase>{{Metric::kL2, "l2"},
                                        {Metric::kInnerProduct, "ip"},
                                        {Metric::kCosine, "cosine"}};
  const std::vector<std::size_t> dims =
      g_quick ? std::vector<std::size_t>{768}
              : std::vector<std::size_t>{64, 128, 768};
  const std::vector<std::size_t> batches =
      g_quick ? std::vector<std::size_t>{64, 4096}
              : std::vector<std::size_t>{1, 64, 4096};

  const SimdLevel best = DefaultDispatchLevel();
  std::vector<SweepResult> results;
  for (const auto& mc : metrics) {
    for (const std::size_t dim : dims) {
      Rng rng(11);
      const auto query = RandomVec(dim, 12);
      for (const std::size_t batch : batches) {
        std::vector<float> base(batch * dim);
        for (auto& x : base) x = static_cast<float>(rng.Gaussian(0, 1));
        std::vector<float> out(batch);

        const PairedTimes t =
            MeasurePair(mc.metric, best, query, base, batch, dim, out);

        SweepResult r;
        r.metric = mc.name;
        r.dim = dim;
        r.batch = batch;
        r.portable_ns = t.portable_ns;
        r.dispatched_ns = t.dispatched_ns;
        r.speedup = t.speedup;
        const double bytes =
            static_cast<double>((batch + 1) * dim * sizeof(float));
        r.portable_gbps = t.portable_ns > 0 ? bytes / t.portable_ns : 0.0;
        r.dispatched_gbps =
            t.dispatched_ns > 0 ? bytes / t.dispatched_ns : 0.0;
        results.push_back(r);
        std::printf("%-6s dim=%-4zu batch=%-5zu portable=%10.1fns "
                    "dispatched=%10.1fns speedup=%5.2fx "
                    "(%5.1f -> %5.1f GB/s)\n",
                    mc.name, dim, batch, t.portable_ns, t.dispatched_ns,
                    r.speedup, r.portable_gbps, r.dispatched_gbps);
      }
    }
  }
  SetActiveSimdLevel(best);
  return results;
}

void WriteJson(const std::string& path, const std::vector<SweepResult>& rs) {
  std::ofstream os(path);
  os << "{\n  \"bench\": \"distance_kernels\",\n"
     << "  \"dispatched_level\": \"" << SimdLevelName(ActiveSimdLevel())
     << "\",\n  \"supported_levels\": [";
  bool first = true;
  const SimdLevel all[] = {SimdLevel::kPortable, SimdLevel::kNeon,
                           SimdLevel::kAvx2, SimdLevel::kAvx512};
  for (const SimdLevel lvl : all) {
    if (!SimdLevelSupported(lvl)) continue;
    if (!first) os << ", ";
    os << '"' << SimdLevelName(lvl) << '"';
    first = false;
  }
  os << "],\n  \"results\": [\n";
  for (std::size_t i = 0; i < rs.size(); ++i) {
    const auto& r = rs[i];
    os << "    {\"metric\": \"" << r.metric << "\", \"dim\": " << r.dim
       << ", \"batch\": " << r.batch << ", \"portable_ns_per_call\": "
       << r.portable_ns << ", \"dispatched_ns_per_call\": " << r.dispatched_ns
       << ", \"speedup_vs_portable\": " << r.speedup
       << ", \"portable_gbps\": " << r.portable_gbps
       << ", \"dispatched_gbps\": " << r.dispatched_gbps << "}"
       << (i + 1 < rs.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace proximity

int main(int argc, char** argv) {
  std::string json_path = "BENCH_kernels.json";
  bool sweep = true;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--no-sweep") == 0) {
      sweep = false;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      proximity::g_quick = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  const std::string level_name(
      proximity::SimdLevelName(proximity::DefaultDispatchLevel()));
  std::printf("active SIMD level: %s\n", level_name.c_str());
  if (sweep) {
    const auto results = proximity::RunSweep();
    proximity::WriteJson(json_path, results);
  }
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
