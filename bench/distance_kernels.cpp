// A-kernels (DESIGN.md): throughput of the SIMD distance kernels that both
// the flat index scan and the cache key scan are built on (§2.2 premise:
// NNS cost is dominated by distance evaluations; §4.1: the original uses
// Rust Portable-SIMD for the same purpose).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "vecmath/kernels.h"

namespace proximity {
namespace {

std::vector<float> RandomVec(std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(dim);
  for (auto& x : v) x = static_cast<float>(rng.Gaussian(0, 1));
  return v;
}

void BM_L2Squared(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto a = RandomVec(dim, 1), b = RandomVec(dim, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(L2SquaredDistance(a, b));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim) * 2 * 4);
}
BENCHMARK(BM_L2Squared)->Arg(64)->Arg(128)->Arg(256)->Arg(768)->Arg(1536);

void BM_InnerProduct(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto a = RandomVec(dim, 3), b = RandomVec(dim, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(InnerProduct(a, b));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim) * 2 * 4);
}
BENCHMARK(BM_InnerProduct)->Arg(64)->Arg(768)->Arg(1536);

void BM_Cosine(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto a = RandomVec(dim, 5), b = RandomVec(dim, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CosineDistance(a, b));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim) * 2 * 4);
}
BENCHMARK(BM_Cosine)->Arg(64)->Arg(768)->Arg(1536);

// The batched scan used by FlatIndex and the cache (row-major block).
void BM_BatchDistance(benchmark::State& state) {
  constexpr std::size_t kDim = 768;
  const auto rows = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  std::vector<float> base(rows * kDim);
  for (auto& x : base) x = static_cast<float>(rng.Gaussian(0, 1));
  const auto query = RandomVec(kDim, 8);
  std::vector<float> out(rows);
  for (auto _ : state) {
    BatchDistance(Metric::kL2, query, base.data(), rows, kDim, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_BatchDistance)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace proximity
