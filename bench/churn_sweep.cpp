// A-churn (DESIGN.md §13): the live-corpus acceptance gates, machine-
// readable in BENCH_churn.json.
//
// Two questions a streaming deployment has to answer before turning on
// ingest:
//
//   1. Does graph quality survive churn? 20% of the corpus is deleted,
//      consolidated, and replaced by new documents; recall@10 of the
//      churned index (against exact brute force over the live set) must
//      stay within 5% of an index REBUILT from scratch over the same
//      live set ("recall_ratio" >= 0.95).
//
//   2. Do queries survive a writer? Query p99 while a background thread
//      sustains Insert/Delete/Consolidate churn at ~2k mutations/sec
//      must stay <= 2x the no-ingest p99 ("p99_ratio" <= 2). The
//      two-phase mutations (planned under the shared lock) plus the
//      writer-priority gate in AcquireShared/AcquireUnique are what
//      this measures. The gate needs a core for each side: on a
//      single-core host queries timeslice against the writer's CPU
//      bursts and p99 reflects the scheduler quantum, not the index —
//      the gate is then null with a "skip_reason", like shard_scaling.
//
// A conservation audit runs alongside: final size must equal
// initial + inserts - deletes, no tombstones may survive the final
// consolidation, and the slot arena must account for every slot
// (size + free == slots). "conservation_ok" summarises all three.
//
// Flags: --json=PATH --rows=N --dim=N --queries=N --quick
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "index/flat_index.h"
#include "index/mutable_index.h"
#include "vecmath/matrix.h"

namespace proximity {
namespace {

double NowNs() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::nano>(
             Clock::now().time_since_epoch())
      .count();
}

Matrix RandomMatrix(std::size_t rows, std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(0, dim);
  m.Reserve(rows);
  std::vector<float> row(dim);
  for (std::size_t r = 0; r < rows; ++r) {
    for (auto& x : row) x = static_cast<float>(rng.Gaussian(0, 1));
    m.AppendRow(row);
  }
  return m;
}

double PercentileUs(std::vector<double>& ns, double p) {
  if (ns.empty()) return 0;
  std::sort(ns.begin(), ns.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(ns.size() - 1));
  return ns[idx] * 1e-3;
}

int Main(int argc, char** argv) {
  std::string json_path = "BENCH_churn.json";
  std::size_t rows = 20000;
  std::size_t dim = 48;
  std::size_t num_queries = 2000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--rows=", 7) == 0) {
      rows = static_cast<std::size_t>(std::atoll(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--dim=", 6) == 0) {
      dim = static_cast<std::size_t>(std::atoll(argv[i] + 6));
    } else if (std::strncmp(argv[i], "--queries=", 10) == 0) {
      num_queries = static_cast<std::size_t>(std::atoll(argv[i] + 10));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      rows = 4000;
      num_queries = 400;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  const std::size_t k = 10;
  const std::size_t churn = rows / 5;  // the 20% of the gate
  std::printf("churn_sweep: rows=%zu dim=%zu queries=%zu churn=%zu\n", rows,
              dim, num_queries, churn);

  const Matrix corpus = RandomMatrix(rows, dim, 11);
  const Matrix fresh = RandomMatrix(churn, dim, 22);
  const Matrix queries = RandomMatrix(num_queries, dim, 33);

  MutableGraphOptions mopts;
  MutableGraphIndex index(dim, mopts);
  for (std::size_t r = 0; r < rows; ++r) (void)index.Insert(corpus.Row(r));

  // --- Gate 1: recall after 20% churn vs a rebuilt-from-scratch index.
  // Delete every 5th id, consolidate, insert `churn` new vectors (slot
  // reuse lands them on the reclaimed ids).
  Rng del_rng(44);
  std::set<VectorId> deleted;
  while (deleted.size() < churn) {
    deleted.insert(static_cast<VectorId>(
        del_rng.Below(static_cast<std::uint64_t>(rows))));
  }
  for (const VectorId id : deleted) {
    if (!index.Delete(id)) std::abort();
  }
  if (index.Consolidate() != churn) std::abort();
  std::vector<VectorId> new_ids;
  for (std::size_t r = 0; r < churn; ++r) {
    new_ids.push_back(index.Insert(fresh.Row(r)));
  }

  // The live set, as (vector, churned-index id) pairs; its positions
  // are the ids of both the exact oracle and the rebuilt index.
  Matrix live(0, dim);
  live.Reserve(rows);
  std::unordered_map<VectorId, std::size_t> churned_to_live;
  for (std::size_t r = 0; r < rows; ++r) {
    if (deleted.count(static_cast<VectorId>(r)) != 0) continue;
    churned_to_live[static_cast<VectorId>(r)] = live.rows();
    live.AppendRow(corpus.Row(r));
  }
  for (std::size_t r = 0; r < churn; ++r) {
    churned_to_live[new_ids[r]] = live.rows();
    live.AppendRow(fresh.Row(r));
  }

  FlatIndex exact(dim);
  exact.AddBatch(live);
  MutableGraphIndex rebuilt(dim, mopts);
  for (std::size_t r = 0; r < live.rows(); ++r) {
    (void)rebuilt.Insert(live.Row(r));
  }

  const std::size_t recall_queries = std::min<std::size_t>(num_queries, 500);
  std::size_t churned_overlap = 0, rebuilt_overlap = 0, truth_total = 0;
  for (std::size_t q = 0; q < recall_queries; ++q) {
    const auto query = queries.Row(q);
    std::set<std::size_t> truth;
    for (const auto& nb : exact.Search(query, k)) {
      truth.insert(static_cast<std::size_t>(nb.id));
    }
    truth_total += truth.size();
    for (const auto& nb : index.Search(query, k)) {
      const auto it = churned_to_live.find(nb.id);
      if (it == churned_to_live.end()) std::abort();  // deleted id served
      if (truth.count(it->second) != 0) ++churned_overlap;
    }
    for (const auto& nb : rebuilt.Search(query, k)) {
      if (truth.count(static_cast<std::size_t>(nb.id)) != 0) {
        ++rebuilt_overlap;
      }
    }
  }
  const double recall_churned =
      static_cast<double>(churned_overlap) / static_cast<double>(truth_total);
  const double recall_rebuilt =
      static_cast<double>(rebuilt_overlap) / static_cast<double>(truth_total);
  const double recall_ratio =
      recall_rebuilt > 0 ? recall_churned / recall_rebuilt : 0;
  const bool recall_gate = recall_ratio >= 0.95;
  std::printf("recall@10 churned=%.4f rebuilt=%.4f ratio=%.4f gate=%s\n",
              recall_churned, recall_rebuilt, recall_ratio,
              recall_gate ? "PASS" : "FAIL");

  // --- Gate 2: query p99 under sustained ingest <= 2x the quiet p99.
  const std::size_t lat_queries = num_queries;
  auto measure = [&](std::vector<double>& out) {
    out.clear();
    out.reserve(lat_queries);
    for (std::size_t q = 0; q < lat_queries; ++q) {
      const auto query = queries.Row(q % queries.rows());
      const double t0 = NowNs();
      const auto result = index.Search(query, k);
      out.push_back(NowNs() - t0);
      if (result.empty()) std::abort();
    }
  };
  std::vector<double> quiet_ns, ingest_ns;
  measure(quiet_ns);  // warmup discarded below; re-measured for real
  measure(quiet_ns);
  const double p99_quiet_us = PercentileUs(quiet_ns, 0.99);

  std::atomic<bool> stop{false};
  std::uint64_t writer_inserts = 0, writer_deletes = 0;
  const std::size_t size_before = index.size();
  std::thread writer([&] {
    // Sustained mixed churn at a defined arrival rate (~2k mutations/s,
    // a generous ingest stream): insert a fresh vector, delete what was
    // inserted two steps ago, consolidate periodically so the free
    // list keeps cycling. Net size stays ~flat. An unpaced spin-loop
    // writer would measure lock fairness under saturation, not serving
    // behavior under ingest.
    Rng wrng(55);
    std::vector<float> vec(dim);
    std::vector<VectorId> pending;
    std::size_t step = 0;
    while (!stop.load(std::memory_order_acquire)) {
      for (auto& x : vec) x = static_cast<float>(wrng.Gaussian(0, 1));
      pending.push_back(index.Insert(vec));
      ++writer_inserts;
      if (pending.size() > 2) {
        if (index.Delete(pending.front())) ++writer_deletes;
        pending.erase(pending.begin());
      }
      if (++step % 64 == 0) (void)index.Consolidate();
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });
  measure(ingest_ns);
  stop.store(true, std::memory_order_release);
  writer.join();
  const double p99_ingest_us = PercentileUs(ingest_ns, 0.99);
  const double p99_ratio =
      p99_quiet_us > 0 ? p99_ingest_us / p99_quiet_us : 0;
  const std::size_t cores = std::thread::hardware_concurrency();
  const bool p99_gate_runs = cores >= 2;
  const bool p99_ok = p99_ratio <= 2.0;
  const char* p99_verdict =
      p99_gate_runs ? (p99_ok ? "true" : "false") : "null";
  const char* p99_skip_reason =
      p99_gate_runs ? "null"
                    : "\"cores<2: queries timeslice against the writer; "
                      "p99 reflects the scheduler, not the index\"";
  std::printf("p99 quiet=%.1fus ingest=%.1fus ratio=%.2f gate=%s "
              "(writer: %llu inserts, %llu deletes)\n",
              p99_quiet_us, p99_ingest_us, p99_ratio,
              p99_gate_runs ? (p99_ok ? "PASS" : "FAIL")
                            : "SKIPPED (cores<2)",
              static_cast<unsigned long long>(writer_inserts),
              static_cast<unsigned long long>(writer_deletes));

  // --- Conservation audit over the whole run.
  (void)index.Consolidate();
  const bool size_conserved =
      index.size() == size_before + writer_inserts - writer_deletes;
  const bool no_tombstones = index.tombstone_count() == 0;
  const bool slots_account =
      index.size() + index.free_count() == index.slot_count();
  const bool conservation_ok =
      size_conserved && no_tombstones && slots_account;
  std::printf("conservation: size=%s tombstones=%s slots=%s\n",
              size_conserved ? "ok" : "VIOLATED",
              no_tombstones ? "ok" : "VIOLATED",
              slots_account ? "ok" : "VIOLATED");

  std::ofstream os(json_path);
  os << "{\n  \"bench\": \"churn_sweep\",\n"
     << "  \"rows\": " << rows << ",\n  \"dim\": " << dim
     << ",\n  \"queries\": " << num_queries
     << ",\n  \"churn_fraction\": 0.2"
     << ",\n  \"recall_churned\": " << recall_churned
     << ",\n  \"recall_rebuilt\": " << recall_rebuilt
     << ",\n  \"recall_ratio\": " << recall_ratio
     << ",\n  \"recall_gate\": " << (recall_gate ? "true" : "false")
     << ",\n  \"p99_quiet_us\": " << p99_quiet_us
     << ",\n  \"p99_ingest_us\": " << p99_ingest_us
     << ",\n  \"p99_ratio\": " << p99_ratio
     << ",\n  \"p99_gate\": " << p99_verdict
     << ",\n  \"p99_skip_reason\": " << p99_skip_reason
     << ",\n  \"cores\": " << cores
     << ",\n  \"writer_inserts\": " << writer_inserts
     << ",\n  \"writer_deletes\": " << writer_deletes
     << ",\n  \"generation\": " << index.generation()
     << ",\n  \"conservation_ok\": " << (conservation_ok ? "true" : "false")
     << "\n}\n";
  std::printf("wrote %s\n", json_path.c_str());
  const bool p99_accept = !p99_gate_runs || p99_ok;
  return recall_gate && p99_accept && conservation_ok ? 0 : 1;
}

}  // namespace
}  // namespace proximity

int main(int argc, char** argv) { return proximity::Main(argc, argv); }
