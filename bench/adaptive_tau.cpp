// A-adapt (DESIGN.md): §3.2.3 — "one might consider adaptive strategies to
// dynamically adjust τ based on … the patterns of queries sent to the
// system. Exploring such adaptive mechanisms could further optimize
// retrieval efficiency."
//
// This bench realizes that future-work idea: a proportional controller
// steers τ toward a target hit rate, and the result is compared against
// the fixed-τ frontier on the MMLU-like workload. The interesting output
// is whether the controller finds an operating point on (or near) the
// frontier without being told the workload's distance scale.
//
// Usage: adaptive_tau [corpus=10000] [capacity=200] [seeds=3]
//                     [targets=0.3,0.5,0.7,0.9] [quiet=true]
#include <cstdio>
#include <iostream>

#include "cache/adaptive_tau.h"
#include "common/config.h"
#include "common/log.h"
#include "llm/answer_model.h"
#include "rag/experiment.h"
#include "workload/benchmark_spec.h"

int main(int argc, char** argv) {
  using namespace proximity;
  const Config cfg = Config::FromArgs(argc, argv);
  if (cfg.GetBool("quiet", false)) SetLogLevel(LogLevel::kWarn);

  const auto corpus = static_cast<std::size_t>(cfg.GetInt("corpus", 10000));
  const auto capacity = cfg.GetInt("capacity", 200);
  const auto seeds = static_cast<std::size_t>(cfg.GetInt("seeds", 3));
  const auto targets = cfg.GetDoubleList("targets", {0.3, 0.5, 0.7, 0.9});

  SweepConfig sc;
  sc.workload_spec = MmluLikeSpec(corpus, 42);
  sc.index_spec.kind = "hnsw";
  sc.index_spec.hnsw_ef_construction = 100;
  sc.answer_params = MmluAnswerParams();
  sc.num_seeds = seeds;
  SweepRunner runner(sc);

  // Fixed-τ frontier for reference.
  CsvTable fixed_table({"mode", "tau_or_target", "hit_rate", "accuracy",
                        "mean_latency_ms", "mean_tau"});
  for (double tau : {0.0, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    double hit = 0, acc = 0, lat = 0;
    for (std::size_t s = 0; s < seeds; ++s) {
      const RunMetrics m = runner.RunOne(capacity, tau, 1 + s);
      hit += m.hit_rate;
      acc += m.accuracy;
      lat += m.mean_latency_ms;
    }
    const double n = static_cast<double>(seeds);
    fixed_table.AddRow({std::string("fixed"), tau, hit / n, acc / n, lat / n,
                        tau});
  }

  // Adaptive controller at several hit-rate targets.
  for (double target : targets) {
    double hit = 0, acc = 0, lat = 0, mean_tau = 0;
    for (std::size_t s = 0; s < seeds; ++s) {
      AdaptiveTauOptions opts;
      opts.target_hit_rate = target;
      opts.initial_tau = 0.5;
      opts.max_tau = 20.0;
      opts.window = 48;
      opts.period = 4;
      opts.step = 1.25;  // converge within the paper's short streams
      const auto r = runner.RunAdaptive(capacity, opts, 1 + s);
      hit += r.metrics.hit_rate;
      acc += r.metrics.accuracy;
      lat += r.metrics.mean_latency_ms;
      mean_tau += r.mean_tau;
    }
    const double n = static_cast<double>(seeds);
    fixed_table.AddRow({std::string("adaptive"), target, hit / n, acc / n,
                        lat / n, mean_tau / n});
    LogInfo("adaptive target={:.2f}: hit={:.3f} mean_tau={:.2f}", target,
            hit / n, mean_tau / n);
  }

  std::printf("# Adaptive-tau controller vs fixed-tau frontier (§3.2.3)\n");
  fixed_table.Write(std::cout);
  return 0;
}
