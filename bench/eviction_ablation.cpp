// A-evict (DESIGN.md): the paper picks FIFO for simplicity (§3.2.2,
// "numerous eviction strategies exist, we opted for FIFO"). This ablation
// compares FIFO against LRU, LFU, and Random on the MMLU-like workload
// under two traffic patterns:
//   - the paper's shuffled-variants stream (weak recency structure), and
//   - a Zipf-popularity stream (conversational-agent traffic, cf. [10]),
// where recency/frequency-aware policies are expected to pull ahead.
//
// Usage: eviction_ablation [corpus=10000] [capacity=50] [tau=2]
//                          [seeds=3] [zipf_length=2000] [quiet=true]
#include <cstdio>
#include <iostream>

#include "common/config.h"
#include "common/log.h"
#include "llm/answer_model.h"
#include "rag/experiment.h"
#include "workload/benchmark_spec.h"

int main(int argc, char** argv) {
  using namespace proximity;
  const Config cfg = Config::FromArgs(argc, argv);
  if (cfg.GetBool("quiet", false)) SetLogLevel(LogLevel::kWarn);

  const auto corpus = static_cast<std::size_t>(cfg.GetInt("corpus", 10000));
  const auto capacity = cfg.GetInt("capacity", 50);
  const double tau = cfg.GetDouble("tau", 2.0);
  const auto seeds = static_cast<std::size_t>(cfg.GetInt("seeds", 3));

  CsvTable table({"stream", "policy", "capacity", "tolerance", "hit_rate",
                  "accuracy", "mean_latency_ms"});

  const EvictionKind kPolicies[] = {EvictionKind::kFifo, EvictionKind::kLru,
                                    EvictionKind::kLfu, EvictionKind::kRandom,
                                    EvictionKind::kClock};

  for (StreamOrder order : {StreamOrder::kShuffled, StreamOrder::kZipf}) {
    SweepConfig sc;
    sc.workload_spec = MmluLikeSpec(corpus, 42);
    sc.index_spec.kind = "hnsw";
    sc.index_spec.hnsw_ef_construction = 100;
    sc.answer_params = MmluAnswerParams();
    sc.num_seeds = seeds;
    sc.stream_order = order;
    sc.zipf_length =
        static_cast<std::size_t>(cfg.GetInt("zipf_length", 2000));
    sc.zipf_exponent = cfg.GetDouble("zipf_exponent", 1.0);
    SweepRunner runner(sc);

    const char* stream_name =
        order == StreamOrder::kShuffled ? "shuffled" : "zipf";
    for (EvictionKind policy : kPolicies) {
      double hit = 0, acc = 0, lat = 0;
      for (std::size_t s = 0; s < seeds; ++s) {
        const RunMetrics m = runner.RunOne(capacity, tau, 1 + s, policy);
        hit += m.hit_rate;
        acc += m.accuracy;
        lat += m.mean_latency_ms;
      }
      const double n = static_cast<double>(seeds);
      table.AddRow({std::string(stream_name),
                    std::string(EvictionName(policy)), capacity, tau, hit / n,
                    acc / n, lat / n});
      LogInfo("{} {}: hit={:.3f}", stream_name, EvictionName(policy),
              hit / n);
    }
  }

  std::printf("# Eviction-policy ablation (paper's design choice, §3.2.2)\n");
  table.Write(std::cout);
  return 0;
}
