// B-obs (DESIGN.md §7): telemetry overhead on the paper-shaped hot path.
//
// The claim under test: wrapping the 768-d batch distance scan — the unit
// the cache ScanKeys and flat index search are built on — in a Span plus a
// counter increment costs <= 2% of the scan itself. The two variants run
// paired back-to-back (like distance_kernels) so scheduler noise on a
// shared box hits both sides of each pair; the reported overhead is the
// median of the per-pair ratios.
//
// Results go to BENCH_obs.json (path override: --json=PATH). The binary is
// built in both obs modes by tools/check.sh; with PROXIMITY_OBS=OFF the
// span compiles to nothing and the measured overhead is the no-op floor.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cache/proximity_cache.h"
#include "common/rng.h"
#include "index/flat_index.h"
#include "obs/metrics_registry.h"
#include "obs/span.h"
#include "vecmath/kernels.h"

namespace proximity {
namespace {

// Keeps the scan result alive without google-benchmark's DoNotOptimize.
volatile float g_sink = 0.0f;

double NowNs() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::nano>(
             Clock::now().time_since_epoch())
      .count();
}

std::vector<float> RandomVec(std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(dim);
  for (auto& x : v) x = static_cast<float>(rng.Gaussian(0, 1));
  return v;
}

constexpr std::size_t kDim = 768;
constexpr std::size_t kRows = 1024;

const obs::CounterHandle kBenchScans("bench.obs_overhead_scans");

// Measurement variants: bare scan, span+counter (what ScanKeys carries),
// and span+counter under an active trace context (what the same scan
// costs while serving a tail-sampled request: the Span additionally
// joins the trace and emits a trace-ring record on exit).
enum class ScanMode { kBare, kSpans, kTraced };

template <ScanMode kMode>
double TimedScans(const std::vector<float>& query,
                  const std::vector<float>& base, std::vector<float>& out,
                  std::size_t iters) {
  const double t0 = NowNs();
  for (std::size_t i = 0; i < iters; ++i) {
    if constexpr (kMode == ScanMode::kSpans) {
      const obs::Span span(obs::Stage::kCacheScan);
      kBenchScans.Inc();
      BatchDistance(Metric::kL2, query, base.data(), kRows, kDim,
                    out.data());
    } else if constexpr (kMode == ScanMode::kTraced) {
      const obs::ScopedTraceContext scope(
          obs::TraceContext{obs::NewTraceId(), 0});
      const obs::Span span(obs::Stage::kCacheScan);
      kBenchScans.Inc();
      BatchDistance(Metric::kL2, query, base.data(), kRows, kDim,
                    out.data());
    } else {
      BatchDistance(Metric::kL2, query, base.data(), kRows, kDim,
                    out.data());
    }
    g_sink = g_sink + out[i % kRows];
  }
  return (NowNs() - t0) / static_cast<double>(iters);
}

template <ScanMode kMode>
std::size_t CalibrateIters(const std::vector<float>& query,
                           const std::vector<float>& base,
                           std::vector<float>& out) {
  std::size_t iters = 1;
  for (;;) {
    const double per_call = TimedScans<kMode>(query, base, out, iters);
    if (per_call * static_cast<double>(iters) >= 2.5e7 ||
        iters >= (1ull << 24)) {
      return iters;
    }
    iters *= 4;
  }
}

struct OverheadResult {
  double base_ns = 0.0;
  double instr_ns = 0.0;
  double traced_ns = 0.0;
  /// Span + counter over the bare scan.
  double overhead_pct = 0.0;
  /// Active trace context over spans-only (the tracing increment).
  double trace_overhead_pct = 0.0;
};

OverheadResult MeasureScanOverhead() {
  Rng rng(21);
  const auto query = RandomVec(kDim, 22);
  std::vector<float> base(kRows * kDim);
  for (auto& x : base) x = static_cast<float>(rng.Gaussian(0, 1));
  std::vector<float> out(kRows);

  const std::size_t b_iters = CalibrateIters<ScanMode::kBare>(query, base,
                                                              out);
  const std::size_t i_iters = CalibrateIters<ScanMode::kSpans>(query, base,
                                                               out);
  const std::size_t t_iters = CalibrateIters<ScanMode::kTraced>(query, base,
                                                                out);

  constexpr int kReps = 11;
  double b[kReps], in[kReps], tr[kReps], ratio[kReps], tratio[kReps];
  for (int rep = 0; rep < kReps; ++rep) {
    b[rep] = TimedScans<ScanMode::kBare>(query, base, out, b_iters);
    in[rep] = TimedScans<ScanMode::kSpans>(query, base, out, i_iters);
    tr[rep] = TimedScans<ScanMode::kTraced>(query, base, out, t_iters);
    ratio[rep] = b[rep] > 0.0 ? in[rep] / b[rep] : 1.0;
    tratio[rep] = in[rep] > 0.0 ? tr[rep] / in[rep] : 1.0;
  }
  std::sort(b, b + kReps);
  std::sort(in, in + kReps);
  std::sort(tr, tr + kReps);
  std::sort(ratio, ratio + kReps);
  std::sort(tratio, tratio + kReps);

  OverheadResult r;
  r.base_ns = b[kReps / 2];
  r.instr_ns = in[kReps / 2];
  r.traced_ns = tr[kReps / 2];
  r.overhead_pct = (ratio[kReps / 2] - 1.0) * 100.0;
  r.trace_overhead_pct = (tratio[kReps / 2] - 1.0) * 100.0;
  return r;
}

// Absolute cost of the instrumented end-to-end units, for context: one
// cache Lookup over a populated cache and one flat search over 10k rows.
double MeasureCacheLookup() {
  ProximityCacheOptions opts;
  opts.capacity = 512;
  opts.tolerance = 0.25f;  // small: most lookups scan every key and miss
  ProximityCache cache(kDim, opts);
  Rng rng(31);
  for (std::size_t i = 0; i < 512; ++i) {
    cache.Insert(RandomVec(kDim, 100 + i), {static_cast<VectorId>(i)});
  }
  const auto probe = RandomVec(kDim, 23);

  std::size_t iters = 1;
  double per_call = 0.0;
  for (;;) {
    const double t0 = NowNs();
    for (std::size_t i = 0; i < iters; ++i) {
      const auto result = cache.Lookup(probe);
      g_sink = g_sink + (result.hit ? 1.0f : 0.0f);
    }
    per_call = (NowNs() - t0) / static_cast<double>(iters);
    if (per_call * static_cast<double>(iters) >= 2.5e7 ||
        iters >= (1ull << 22)) {
      break;
    }
    iters *= 4;
  }
  return per_call;
}

double MeasureFlatSearch() {
  constexpr std::size_t kCorpus = 10000;
  FlatIndex index(kDim);
  Rng rng(41);
  std::vector<float> row(kDim);
  for (std::size_t i = 0; i < kCorpus; ++i) {
    for (auto& x : row) x = static_cast<float>(rng.Gaussian(0, 1));
    index.Add(row);
  }
  const auto query = RandomVec(kDim, 43);

  std::size_t iters = 1;
  double per_call = 0.0;
  for (;;) {
    const double t0 = NowNs();
    for (std::size_t i = 0; i < iters; ++i) {
      const auto neighbors = index.Search(query, 10);
      g_sink = g_sink + static_cast<float>(neighbors.size());
    }
    per_call = (NowNs() - t0) / static_cast<double>(iters);
    if (per_call * static_cast<double>(iters) >= 2.5e7 ||
        iters >= (1ull << 22)) {
      break;
    }
    iters *= 4;
  }
  return per_call;
}

void WriteJson(const std::string& path, const OverheadResult& scan,
               double cache_lookup_ns, double flat_search_ns) {
  std::ofstream os(path);
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\n"
                "  \"bench\": \"obs_overhead\",\n"
                "  \"obs_enabled\": %s,\n"
                "  \"scan_rows\": %zu,\n"
                "  \"scan_dim\": %zu,\n"
                "  \"scan_base_ns\": %.1f,\n"
                "  \"scan_instr_ns\": %.1f,\n"
                "  \"scan_traced_ns\": %.1f,\n"
                "  \"scan_overhead_pct\": %.3f,\n"
                "  \"trace_overhead_pct\": %.3f,\n"
                "  \"cache_lookup_ns\": %.1f,\n"
                "  \"flat_search_ns\": %.1f\n"
                "}\n",
                PROXIMITY_OBS_ENABLED ? "true" : "false", kRows, kDim,
                scan.base_ns, scan.instr_ns, scan.traced_ns,
                scan.overhead_pct, scan.trace_overhead_pct,
                cache_lookup_ns, flat_search_ns);
  os << buf;
}

int Main(int argc, char** argv) {
  std::string json_path = "BENCH_obs.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  const OverheadResult scan = MeasureScanOverhead();
  const double lookup_ns = MeasureCacheLookup();
  const double search_ns = MeasureFlatSearch();

  std::printf("obs_enabled=%d\n", PROXIMITY_OBS_ENABLED ? 1 : 0);
  std::printf("batch scan %zux%zu: base=%.1fns instrumented=%.1fns "
              "overhead=%.3f%%\n",
              kRows, kDim, scan.base_ns, scan.instr_ns, scan.overhead_pct);
  std::printf("batch scan traced: %.1fns trace_overhead=%.3f%% "
              "(over spans-only)\n",
              scan.traced_ns, scan.trace_overhead_pct);
  std::printf("cache lookup (512 keys, instrumented): %.1fns\n", lookup_ns);
  std::printf("flat search (10k rows, instrumented):  %.1fns\n", search_ns);

  WriteJson(json_path, scan, lookup_ns, search_ns);
  std::printf("wrote %s\n", json_path.c_str());

  // The acceptance gate: the span + counter must stay within 2% of the
  // bare scan (generous slack over the measured sub-0.5% on a quiet box).
  if (scan.overhead_pct > 2.0) {
    std::fprintf(stderr, "FAIL: obs overhead %.3f%% exceeds 2%% budget\n",
                 scan.overhead_pct);
    return 1;
  }
  // Tracing gate: joining an active trace (context save/restore plus one
  // seqlock ring append per span) must stay within 2% of spans-only.
  if (scan.trace_overhead_pct > 2.0) {
    std::fprintf(stderr,
                 "FAIL: trace overhead %.3f%% exceeds 2%% budget\n",
                 scan.trace_overhead_pct);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace proximity

int main(int argc, char** argv) { return proximity::Main(argc, argv); }
