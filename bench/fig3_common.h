// Shared driver for the two Figure-3 reproduction benches.
#pragma once

#include <cstdio>
#include <iostream>
#include <map>

#include "common/ascii_plot.h"
#include "common/config.h"
#include "common/log.h"
#include "rag/experiment.h"
#include "rag/verdict.h"

namespace proximity::bench {

/// Applies the command-line overrides shared by both Figure-3 benches.
inline void ApplyCommonOverrides(const Config& cfg, SweepConfig& sc) {
  sc.capacities = cfg.GetIntList("capacities", sc.capacities);
  sc.tolerances = cfg.GetDoubleList("tolerances", sc.tolerances);
  sc.num_seeds = static_cast<std::size_t>(
      cfg.GetInt("seeds", static_cast<std::int64_t>(sc.num_seeds)));
  sc.base_seed = static_cast<std::uint64_t>(cfg.GetInt("base_seed", 1));
  sc.top_k =
      static_cast<std::size_t>(cfg.GetInt("top_k", static_cast<std::int64_t>(
                                                       sc.top_k)));
  sc.variants_per_question = static_cast<std::size_t>(cfg.GetInt(
      "variants", static_cast<std::int64_t>(sc.variants_per_question)));
  sc.eviction = EvictionFromName(
      cfg.GetString("eviction", std::string(EvictionName(sc.eviction))));
  if (cfg.GetBool("quiet", false)) SetLogLevel(LogLevel::kWarn);
}

/// Renders the three Figure-3 panels as terminal charts: one series per
/// cache capacity, metric vs τ.
inline void PlotFig3Panels(const std::vector<SweepCell>& cells) {
  struct Panel {
    const char* title;
    double (*value)(const SweepCell&);
  };
  const Panel panels[] = {
      {"accuracy vs tau (one series per capacity c)",
       [](const SweepCell& c) { return c.mean.accuracy; }},
      {"cache hit rate vs tau",
       [](const SweepCell& c) { return c.mean.hit_rate; }},
      {"mean retrieval latency [ms] vs tau",
       [](const SweepCell& c) { return c.mean.mean_latency_ms; }},
  };
  for (const auto& panel : panels) {
    std::map<std::int64_t, PlotSeries> by_capacity;
    for (const auto& cell : cells) {
      auto& series = by_capacity[cell.capacity];
      series.label = "c=" + std::to_string(cell.capacity);
      series.points.emplace_back(cell.tolerance, panel.value(cell));
    }
    std::vector<PlotSeries> series;
    for (auto& [_, s] : by_capacity) series.push_back(std::move(s));
    PlotOptions opts;
    opts.title = panel.title;
    opts.x_label = "tau (log-ish scale)";
    opts.log_x = true;
    std::fputs(RenderAsciiPlot(series, opts).c_str(), stdout);
    std::fputs("\n", stdout);
  }
}

enum class Fig3Row { kMmlu, kMedrag };

/// Runs the sweep and prints the figure CSV, the latency-reduction
/// summary (the paper's headline claim), and the per-claim reproduction
/// verdicts. Pass plot=true on the command line to also render the panels
/// as terminal charts.
inline int RunFig3(const char* figure_label, Fig3Row row, SweepConfig sc,
                   bool plot = false) {
  SweepRunner runner(std::move(sc));
  const auto cells = runner.Run();

  std::printf("# %s\n", figure_label);
  std::printf("# columns mirror Figure 3: accuracy (left panel), hit_rate\n");
  std::printf(
      "# (middle panel), mean_latency_ms (right panel), per (c, tau)\n");
  SweepRunner::ToCsv(cells).Write(std::cout);

  std::printf("\n# Latency-reduction summary (cf. abstract: up to 59%% for\n");
  std::printf("# MMLU, 70.8%% for MedRAG): best tau > 0 maintaining\n");
  std::printf("# accuracy vs the tau = 0 baseline\n");
  SweepRunner::LatencyReductionSummary(cells).Write(std::cout);

  std::printf("\n# Reproduction verdicts (paper §4.3 anchors)\n");
  const auto claims = row == Fig3Row::kMmlu ? CheckMmluClaims(cells)
                                            : CheckMedragClaims(cells);
  std::fputs(RenderClaims(claims).c_str(), stdout);

  if (plot) {
    std::printf("\n");
    PlotFig3Panels(cells);
  }
  return 0;
}

}  // namespace proximity::bench
