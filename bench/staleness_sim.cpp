// A-stale: what happens to a warm cache when the corpus is mutated
// underneath it — and what each staleness policy buys (DESIGN.md §13).
//
// The cached values are document-id lists retrieved in the past; when a
// document is rewritten in place, a hit keeps serving the pre-update
// list. Simulation: each question has 6 gold passages, but in "epoch 1"
// two of them are not yet written (their corpus slots hold background
// text). The cache warms against the epoch-1 corpus; then the update is
// applied as REAL streaming mutations on the one live index — the stub
// slots are Delete()d, Consolidate() reclaims them, and the finished
// passages are Insert()ed into the reclaimed slots (slot reuse keeps
// every id stable, so cached lists remain valid ids — just stale
// evidence). The index generation the mutations bumped is then pushed
// into each warm cache, and the post-update stream is replayed under
// each hit-time staleness policy:
//   serve-stale       — stale hits served anyway (fast, wrong evidence)
//   revalidate        — stale hits degrade to misses and re-retrieve
//   invalidate-region — a stale hit evicts its whole τ-region
//   fresh             — cache cleared at the update (oracle baseline)
//
// Expected shape: `serve-stale` keeps its high hit rate but loses
// relevance and accuracy; `revalidate`/`invalidate-region` pay misses
// to recover accuracy; `fresh` has full accuracy and the worst early
// hit rate.
//
// Usage: staleness_sim [corpus=8000] [capacity=300] [tau=2] [quiet=true]
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <stdexcept>

#include "cache/proximity_cache.h"
#include "common/config.h"
#include "common/csv.h"
#include "common/log.h"
#include "embed/hash_embedder.h"
#include "index/index_factory.h"
#include "llm/answer_model.h"
#include "rag/pipeline.h"
#include "workload/benchmark_spec.h"
#include "workload/query_stream.h"
#include "workload/synth_text.h"

int main(int argc, char** argv) {
  using namespace proximity;
  const Config cfg = Config::FromArgs(argc, argv);
  if (cfg.GetBool("quiet", false)) SetLogLevel(LogLevel::kWarn);

  const auto corpus_size =
      static_cast<std::size_t>(cfg.GetInt("corpus", 8000));
  const auto capacity = static_cast<std::size_t>(cfg.GetInt("capacity", 300));
  const float tau = static_cast<float>(cfg.GetDouble("tau", 2.0));

  WorkloadSpec spec = MedragLikeSpec(corpus_size, 42);
  spec.golds_per_question = 6;  // headroom for the "new documents"
  const Workload workload = BuildWorkload(spec);

  // Epoch 1: the last 2 golds of each question do not exist yet — their
  // corpus slots are overwritten with unrelated background-style text so
  // ids stay aligned across epochs.
  std::vector<std::string> epoch1 = workload.passages;
  std::vector<VectorId> updated_ids;
  for (const auto& question : workload.questions) {
    for (std::size_t g = 4; g < question.gold_ids.size(); ++g) {
      const auto id = static_cast<std::size_t>(question.gold_ids[g]);
      std::string filler;
      for (int w = 0; w < 45; ++w) {
        if (w) filler += ' ';
        filler += GlobalWord((id * 45 + static_cast<std::size_t>(w)) % 600);
      }
      epoch1[id] = filler;
      updated_ids.push_back(question.gold_ids[g]);
    }
  }
  std::sort(updated_ids.begin(), updated_ids.end());
  updated_ids.erase(std::unique(updated_ids.begin(), updated_ids.end()),
                    updated_ids.end());

  HashEmbedder embedder;
  IndexSpec ispec;
  ispec.kind = "mutable";
  LogInfo("building live index over epoch-1 corpus ({} passages)",
          workload.passages.size());
  auto index = BuildIndex(ispec, embedder.EmbedBatch(epoch1));

  QueryStreamOptions sopts;
  sopts.seed = 1;
  const auto stream = BuildQueryStream(workload, sopts);
  std::vector<std::string> texts;
  for (const auto& e : stream) texts.push_back(e.text);
  const Matrix embeddings = embedder.EmbedBatch(texts);
  const std::size_t half = stream.size() / 2;

  auto warm_phase = [&](ProximityCache& cache) {
    Retriever retriever(index.get(), &cache, nullptr, {.top_k = 10});
    RagPipeline pipeline(&workload, &embedder, &retriever,
                         AnswerModel(MedragAnswerParams()), 1);
    for (std::size_t i = 0; i < half; ++i) {
      pipeline.ProcessQuery(stream[i], embeddings.Row(i), i);
    }
  };

  auto post_update_phase = [&](ProximityCache& cache) {
    Retriever retriever(index.get(), &cache, nullptr, {.top_k = 10});
    RagPipeline pipeline(&workload, &embedder, &retriever,
                         AnswerModel(MedragAnswerParams()), 1);
    std::size_t correct = 0, hits = 0;
    double relevance = 0;
    for (std::size_t i = half; i < stream.size(); ++i) {
      const QueryResult r =
          pipeline.ProcessQuery(stream[i], embeddings.Row(i), i);
      correct += r.correct ? 1 : 0;
      hits += r.cache_hit ? 1 : 0;
      relevance += r.judgment.relevance;
    }
    const double n = static_cast<double>(stream.size() - half);
    return std::tuple{static_cast<double>(correct) / n,
                      static_cast<double>(hits) / n, relevance / n};
  };

  // Every mode's cache warms against the SAME pre-update index state,
  // before the mutations below are applied.
  ProximityCacheOptions copts;
  copts.capacity = capacity;
  copts.tolerance = tau;
  ProximityCacheOptions serve_stale = copts;
  serve_stale.staleness = StalenessPolicy::kServeStale;
  ProximityCacheOptions revalidate = copts;
  revalidate.staleness = StalenessPolicy::kRevalidate;
  ProximityCacheOptions invalidate = copts;
  invalidate.staleness = StalenessPolicy::kInvalidateRegion;

  ProximityCache cache_stale(embedder.dim(), serve_stale);
  ProximityCache cache_reval(embedder.dim(), revalidate);
  ProximityCache cache_region(embedder.dim(), invalidate);
  ProximityCache cache_fresh(embedder.dim(), copts);
  warm_phase(cache_stale);
  warm_phase(cache_reval);
  warm_phase(cache_region);
  warm_phase(cache_fresh);

  // The update, as real streaming mutations: tombstone every stub slot,
  // consolidate so the slots are reclaimed, then insert the finished
  // passages in ascending-id order — slot reuse hands back the lowest
  // free slot first, so every document keeps its id across the update.
  LogInfo("applying {} in-place document updates via Delete/Insert",
          updated_ids.size());
  const Matrix finished = embedder.EmbedBatch(workload.passages);
  for (const VectorId id : updated_ids) {
    if (!index->Delete(id)) {
      throw std::runtime_error("staleness_sim: Delete failed");
    }
  }
  const std::size_t reclaimed = index->Consolidate();
  if (reclaimed != updated_ids.size()) {
    throw std::runtime_error("staleness_sim: consolidation reclaimed " +
                             std::to_string(reclaimed) + " of " +
                             std::to_string(updated_ids.size()));
  }
  for (const VectorId id : updated_ids) {
    const VectorId got =
        index->Insert(finished.Row(static_cast<std::size_t>(id)));
    if (got != id) {
      throw std::runtime_error("staleness_sim: slot reuse broke id " +
                               std::to_string(id) + " -> " +
                               std::to_string(got));
    }
  }
  const std::uint64_t generation = index->generation();

  // The staleness contract: push the post-mutation generation into each
  // warm cache; every pre-update entry is now stale at hit time.
  cache_stale.set_generation(generation);
  cache_reval.set_generation(generation);
  cache_region.set_generation(generation);
  cache_fresh.set_generation(generation);
  cache_fresh.Clear();  // the refresh-everything oracle

  CsvTable table(
      {"mode", "accuracy", "hit_rate", "mean_relevance", "stale_hits"});
  const auto run_mode = [&](const std::string& mode, ProximityCache& cache) {
    const auto [acc, hit, rel] = post_update_phase(cache);
    table.AddRow({mode, acc, hit, rel,
                  static_cast<double>(cache.stats().stale_hits)});
  };
  run_mode("serve-stale", cache_stale);
  run_mode("revalidate", cache_reval);
  run_mode("invalidate-region", cache_region);
  run_mode("fresh", cache_fresh);

  std::printf("# Staleness under live-corpus mutation (policies of "
              "DESIGN.md §13)\n");
  table.Write(std::cout);
  return 0;
}
