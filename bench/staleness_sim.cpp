// A-stale (extension): what happens to a warm cache when the database is
// updated underneath it — and how the max_age staleness bound helps.
//
// The cached values are document-id lists retrieved in the past; if the
// corpus is re-indexed with better documents, a hit keeps serving the
// pre-update list. Simulation: each question has 6 gold passages, but in
// "epoch 1" two of them are not yet written (their corpus slots hold
// background text). The cache warms against the epoch-1 index; then the
// index is swapped for the fully-written epoch-2 corpus (same ids, so
// cached lists remain valid ids — just stale evidence). We compare, over
// the post-update stream:
//   stale     — warm cache carried over, no expiry (max_age = 0)
//   bounded   — warm cache carried over with max_age = stream/2
//   fresh     — cache cleared at the update (refresh-everything baseline)
//
// Expected shape: `stale` keeps its high hit rate but loses relevance and
// accuracy; `bounded` pays some misses to recover accuracy; `fresh` has
// full accuracy and the worst early hit rate.
//
// Usage: staleness_sim [corpus=8000] [capacity=300] [tau=2] [quiet=true]
#include <cstdio>
#include <iostream>

#include "cache/proximity_cache.h"
#include "common/config.h"
#include "common/csv.h"
#include "common/log.h"
#include "embed/hash_embedder.h"
#include "index/index_factory.h"
#include "llm/answer_model.h"
#include "rag/pipeline.h"
#include "workload/benchmark_spec.h"
#include "workload/query_stream.h"
#include "workload/synth_text.h"

int main(int argc, char** argv) {
  using namespace proximity;
  const Config cfg = Config::FromArgs(argc, argv);
  if (cfg.GetBool("quiet", false)) SetLogLevel(LogLevel::kWarn);

  const auto corpus_size =
      static_cast<std::size_t>(cfg.GetInt("corpus", 8000));
  const auto capacity = static_cast<std::size_t>(cfg.GetInt("capacity", 300));
  const float tau = static_cast<float>(cfg.GetDouble("tau", 2.0));

  WorkloadSpec spec = MedragLikeSpec(corpus_size, 42);
  spec.golds_per_question = 6;  // headroom for the "new documents"
  const Workload workload = BuildWorkload(spec);

  // Epoch 1: the last 2 golds of each question do not exist yet — their
  // corpus slots are overwritten with unrelated background-style text so
  // ids stay aligned across epochs.
  std::vector<std::string> epoch1 = workload.passages;
  for (const auto& question : workload.questions) {
    for (std::size_t g = 4; g < question.gold_ids.size(); ++g) {
      const auto id = static_cast<std::size_t>(question.gold_ids[g]);
      std::string filler;
      for (int w = 0; w < 45; ++w) {
        if (w) filler += ' ';
        filler += GlobalWord((id * 45 + static_cast<std::size_t>(w)) % 600);
      }
      epoch1[id] = filler;
    }
  }

  HashEmbedder embedder;
  IndexSpec ispec;
  ispec.kind = "flat";
  LogInfo("building epoch-1 and epoch-2 indexes ({} passages)",
          workload.passages.size());
  auto index_v1 = BuildIndex(ispec, embedder.EmbedBatch(epoch1));
  auto index_v2 = BuildIndex(ispec, embedder.EmbedBatch(workload.passages));

  QueryStreamOptions sopts;
  sopts.seed = 1;
  const auto stream = BuildQueryStream(workload, sopts);
  std::vector<std::string> texts;
  for (const auto& e : stream) texts.push_back(e.text);
  const Matrix embeddings = embedder.EmbedBatch(texts);
  const std::size_t half = stream.size() / 2;

  auto warm_phase = [&](ProximityCache& cache) {
    Retriever retriever(index_v1.get(), &cache, nullptr, {.top_k = 10});
    RagPipeline pipeline(&workload, &embedder, &retriever,
                         AnswerModel(MedragAnswerParams()), 1);
    for (std::size_t i = 0; i < half; ++i) {
      pipeline.ProcessQuery(stream[i], embeddings.Row(i), i);
    }
  };

  auto post_update_phase = [&](ProximityCache& cache) {
    Retriever retriever(index_v2.get(), &cache, nullptr, {.top_k = 10});
    RagPipeline pipeline(&workload, &embedder, &retriever,
                         AnswerModel(MedragAnswerParams()), 1);
    std::size_t correct = 0, hits = 0;
    double relevance = 0;
    for (std::size_t i = half; i < stream.size(); ++i) {
      const QueryResult r =
          pipeline.ProcessQuery(stream[i], embeddings.Row(i), i);
      correct += r.correct ? 1 : 0;
      hits += r.cache_hit ? 1 : 0;
      relevance += r.judgment.relevance;
    }
    const double n = static_cast<double>(stream.size() - half);
    return std::tuple{static_cast<double>(correct) / n,
                      static_cast<double>(hits) / n, relevance / n};
  };

  CsvTable table({"mode", "accuracy", "hit_rate", "mean_relevance"});

  ProximityCacheOptions copts;
  copts.capacity = capacity;
  copts.tolerance = tau;

  {  // stale: no expiry, cache carried across the update
    ProximityCache cache(embedder.dim(), copts);
    warm_phase(cache);
    const auto [acc, hit, rel] = post_update_phase(cache);
    table.AddRow({std::string("stale"), acc, hit, rel});
  }
  {  // bounded: max_age forces refreshes on a rolling horizon
    ProximityCacheOptions bounded = copts;
    bounded.max_age = stream.size() / 2;
    ProximityCache cache(embedder.dim(), bounded);
    warm_phase(cache);
    const auto [acc, hit, rel] = post_update_phase(cache);
    table.AddRow({std::string("bounded"), acc, hit, rel});
  }
  {  // fresh: explicit invalidation at the update
    ProximityCache cache(embedder.dim(), copts);
    warm_phase(cache);
    cache.Clear();
    const auto [acc, hit, rel] = post_update_phase(cache);
    table.AddRow({std::string("fresh"), acc, hit, rel});
  }

  std::printf("# Staleness under database updates (extension; motivates "
              "max_age)\n");
  table.Write(std::cout);
  return 0;
}
