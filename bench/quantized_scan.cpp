// B-quant (DESIGN.md §11): the compressed-vector fast path end to end.
//
// Builds one corpus three times into FlatIndex — float32 (exact
// single-level scan), sq8, and sq4 (two-level: blocked quantized primary
// scan + float rerank of rerank_factor*k candidates) — and measures
// per-query latency, effective scan bandwidth, and recall@k against the
// float32 results. The headline acceptance gate of the compressed path
// lives here: sq8 must beat float32 by >= 2x ns/query at recall@10 >=
// 0.95 on the full 1M x 768-d run (>= 1.5x under --quick, which is what
// tools/bench_smoke.sh checks on 100k vectors).
//
// All scans run single-threaded (parallel_threshold = 0): the point is
// per-core bytes-per-query, not pool scaling (shard_scaling covers that).
//
// Flags: --quick (100k corpus, CI budget), --json=PATH (default
// BENCH_quant.json), --n=N, --dim=N.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "index/flat_index.h"
#include "vecmath/kernels.h"
#include "vecmath/matrix.h"

namespace proximity {
namespace {

struct StorageResult {
  const char* storage;
  double ns_per_query;      // median over measured queries
  double gbps;              // bytes touched per query / ns_per_query
  double bytes_per_query;   // primary scan + rerank traffic
  double recall_at_k;       // vs the float32 top-k (1.0 for float32)
  double speedup_vs_float;  // float ns_per_query / this ns_per_query
};

double NowNs() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::nano>(
             Clock::now().time_since_epoch())
      .count();
}

Matrix RandomMatrix(std::size_t rows, std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(0, dim);
  m.Reserve(rows);
  std::vector<float> row(dim);
  for (std::size_t r = 0; r < rows; ++r) {
    for (auto& x : row) x = static_cast<float>(rng.Gaussian(0, 1));
    m.AppendRow(row);
  }
  return m;
}

double RecallAtK(const std::vector<Neighbor>& truth,
                 const std::vector<Neighbor>& got) {
  if (truth.empty()) return 1.0;
  std::size_t hits = 0;
  for (const auto& t : truth) {
    for (const auto& g : got) {
      if (g.id == t.id) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

// Runs every query twice for warm caches, then once timed; returns the
// median per-query ns and each query's results (for the recall side).
double MeasureSearch(const FlatIndex& index, const Matrix& queries,
                     std::size_t k,
                     std::vector<std::vector<Neighbor>>* results) {
  const std::size_t nq = queries.rows();
  results->assign(nq, {});
  for (std::size_t q = 0; q < std::min<std::size_t>(nq, 2); ++q) {
    (void)index.Search(queries.Row(q), k);  // warmup: touch the whole store
  }
  std::vector<double> ns(nq);
  for (std::size_t q = 0; q < nq; ++q) {
    const double t0 = NowNs();
    (*results)[q] = index.Search(queries.Row(q), k);
    ns[q] = NowNs() - t0;
  }
  std::sort(ns.begin(), ns.end());
  return ns[nq / 2];
}

void WriteJson(const std::string& path, std::size_t n, std::size_t dim,
               std::size_t k, std::size_t rerank,
               const std::vector<StorageResult>& rows) {
  std::ofstream os(path);
  os << "{\n  \"bench\": \"quantized_scan\",\n"
     << "  \"simd_level\": \"" << SimdLevelName(ActiveSimdLevel()) << "\",\n"
     << "  \"n\": " << n << ",\n  \"dim\": " << dim << ",\n  \"k\": " << k
     << ",\n  \"rerank_factor\": " << rerank << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    os << "    {\"storage\": \"" << r.storage
       << "\", \"ns_per_query\": " << r.ns_per_query
       << ", \"gbps\": " << r.gbps
       << ", \"bytes_per_query\": " << r.bytes_per_query
       << ", \"recall_at_k\": " << r.recall_at_k
       << ", \"speedup_vs_float\": " << r.speedup_vs_float << "}"
       << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

int Run(std::size_t n, std::size_t dim, const std::string& json_path) {
  constexpr std::size_t kK = 10;
  constexpr std::size_t kRerank = 4;
  const std::size_t nq = n >= 500'000 ? 9 : 33;

  std::printf("corpus: %zu x %zu-d, k=%zu, rerank=%zu, %zu queries, "
              "simd=%s\n",
              n, dim, kK, kRerank, nq,
              std::string(SimdLevelName(ActiveSimdLevel())).c_str());

  const Matrix corpus = RandomMatrix(n, dim, /*seed=*/101);
  const Matrix queries = RandomMatrix(nq, dim, /*seed=*/202);

  const StorageLayout layouts[] = {StorageLayout::kFloat32,
                                   StorageLayout::kSq8, StorageLayout::kSq4};
  std::vector<StorageResult> rows;
  std::vector<std::vector<Neighbor>> truth;
  double float_ns = 0.0;

  for (const StorageLayout layout : layouts) {
    FlatIndexOptions opts;
    opts.metric = Metric::kL2;
    opts.parallel_threshold = 0;  // single-threaded: per-core bandwidth
    opts.storage = layout;
    opts.rerank_factor = kRerank;
    FlatIndex index(dim, opts);
    const double b0 = NowNs();
    index.AddBatch(corpus);
    const double build_ms = (NowNs() - b0) * 1e-6;

    std::vector<std::vector<Neighbor>> results;
    const double ns = MeasureSearch(index, queries, kK, &results);

    StorageResult r;
    r.storage = StorageLayoutName(layout).data();
    r.ns_per_query = ns;
    if (layout == StorageLayout::kFloat32) {
      r.bytes_per_query = static_cast<double>(n * dim * sizeof(float));
      r.recall_at_k = 1.0;
      truth = std::move(results);
      float_ns = ns;
      r.speedup_vs_float = 1.0;
    } else {
      // Primary traffic is the blocked code area; the rerank re-reads
      // rerank_factor*k float rows.
      r.bytes_per_query =
          static_cast<double>(n * index.compressed().block_stride()) +
          static_cast<double>(kRerank * kK * dim * sizeof(float));
      double recall = 0.0;
      for (std::size_t q = 0; q < results.size(); ++q) {
        recall += RecallAtK(truth[q], results[q]);
      }
      r.recall_at_k = recall / static_cast<double>(results.size());
      r.speedup_vs_float = ns > 0 ? float_ns / ns : 0.0;
    }
    r.gbps = ns > 0 ? r.bytes_per_query / ns : 0.0;
    rows.push_back(r);
    std::printf("%-8s build=%8.1fms search=%12.1fns/query %6.2f GB/s "
                "recall@%zu=%.4f speedup=%5.2fx\n",
                r.storage, build_ms, r.ns_per_query, r.gbps, kK,
                r.recall_at_k, r.speedup_vs_float);
  }

  WriteJson(json_path, n, dim, kK, kRerank, rows);
  return 0;
}

}  // namespace
}  // namespace proximity

int main(int argc, char** argv) {
  std::size_t n = 1'000'000;
  std::size_t dim = 768;
  std::string json_path = "BENCH_quant.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      n = 100'000;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--n=", 4) == 0) {
      n = static_cast<std::size_t>(std::strtoull(argv[i] + 4, nullptr, 10));
    } else if (std::strncmp(argv[i], "--dim=", 6) == 0) {
      dim = static_cast<std::size_t>(std::strtoull(argv[i] + 6, nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  return proximity::Run(n, dim, json_path);
}
