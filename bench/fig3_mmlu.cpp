// Reproduces Figure 3, top row (MMLU): accuracy, cache hit rate, and
// retrieval latency for c in {10,50,100,200,300} x tau in {0,.5,1,2,5,10}.
//
// Paper setup (§4.2): MMLU econometrics questions (131 x 4 variants,
// shuffled) against WIKI_DPR served by FAISS-HNSW. Here: the MMLU-like
// synthetic workload against our HNSW index (corpus size configurable).
//
// Usage: fig3_mmlu [corpus=30000] [seeds=5] [capacities=10,50,...]
//                  [tolerances=0,0.5,...] [ef_search=64] [quiet=true]
#include "bench/fig3_common.h"
#include "llm/answer_model.h"
#include "workload/benchmark_spec.h"

int main(int argc, char** argv) {
  using namespace proximity;
  const Config cfg = Config::FromArgs(argc, argv);

  SweepConfig sc;
  sc.workload_spec = MmluLikeSpec(
      static_cast<std::size_t>(cfg.GetInt("corpus", 30000)),
      static_cast<std::uint64_t>(cfg.GetInt("workload_seed", 42)));
  sc.index_spec.kind = cfg.GetString("index", "hnsw");
  sc.index_spec.hnsw_m = static_cast<std::size_t>(cfg.GetInt("hnsw_m", 16));
  sc.index_spec.hnsw_ef_construction =
      static_cast<std::size_t>(cfg.GetInt("ef_construction", 100));
  // ef_search = 256 keeps HNSW recall near-exact at harness scale, so the
  // tau = 0 accuracy anchor matches the paper's 50.2% (recall losses would
  // otherwise shift the whole accuracy panel down).
  sc.index_spec.hnsw_ef_search =
      static_cast<std::size_t>(cfg.GetInt("ef_search", 256));
  sc.answer_params = MmluAnswerParams();
  sc.tolerances = {0, 0.5, 1, 2, 5, 10};  // the paper's MMLU tau set
  bench::ApplyCommonOverrides(cfg, sc);

  return bench::RunFig3("Figure 3 (top row): MMLU benchmark",
                        bench::Fig3Row::kMmlu, std::move(sc),
                        cfg.GetBool("plot", false));
}
