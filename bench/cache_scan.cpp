// A-scan (DESIGN.md): §3.2.1 claims the linear scan over cached keys is
// "negligible when compared to a database query". This google-benchmark
// binary quantifies that: cache lookup cost as a function of capacity c,
// against flat and HNSW database query cost at harness scale — and shows
// where the claim breaks (c approaching the corpus size).
#include <benchmark/benchmark.h>

#include <memory>

#include "cache/proximity_cache.h"
#include "common/rng.h"
#include "index/flat_index.h"
#include "index/hnsw_index.h"

namespace proximity {
namespace {

constexpr std::size_t kDim = 768;

Matrix RandomMatrix(std::size_t rows, std::size_t dim, std::uint64_t seed) {
  Matrix m(rows, dim);
  Rng rng(seed);
  for (std::size_t r = 0; r < rows; ++r) {
    for (auto& x : m.MutableRow(r)) {
      x = static_cast<float>(rng.Gaussian(0, 1));
    }
  }
  return m;
}

std::vector<float> RandomQuery(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> q(kDim);
  for (auto& x : q) x = static_cast<float>(rng.Gaussian(0, 1));
  return q;
}

// Cache lookup latency vs capacity (always-miss scan of c keys).
void BM_CacheLookup(benchmark::State& state) {
  const auto capacity = static_cast<std::size_t>(state.range(0));
  ProximityCacheOptions opts;
  opts.capacity = capacity;
  opts.tolerance = 0.0f;  // never hits: measures the full scan
  ProximityCache cache(kDim, opts);
  const Matrix keys = RandomMatrix(capacity, kDim, 7);
  for (std::size_t r = 0; r < capacity; ++r) {
    cache.Insert(keys.Row(r), {static_cast<VectorId>(r)});
  }
  const auto query = RandomQuery(11);
  for (auto _ : state) {
    auto result = cache.Lookup(query);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(capacity));
}
BENCHMARK(BM_CacheLookup)->RangeMultiplier(10)->Range(10, 100000);

// Database query latency: exact flat scan.
void BM_FlatSearch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  FlatIndex index(kDim, {.metric = Metric::kL2, .parallel_threshold = 0});
  index.AddBatch(RandomMatrix(n, kDim, 13));
  const auto query = RandomQuery(17);
  for (auto _ : state) {
    auto result = index.Search(query, 10);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FlatSearch)->RangeMultiplier(10)->Range(1000, 100000);

// Database query latency: HNSW.
void BM_HnswSearch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  static std::unique_ptr<HnswIndex> index;  // build once per size
  static std::size_t built_for = 0;
  if (built_for != n) {
    index = std::make_unique<HnswIndex>(
        kDim, HnswOptions{.M = 16, .ef_construction = 100, .ef_search = 64});
    index->AddBatch(RandomMatrix(n, kDim, 19));
    built_for = n;
  }
  const auto query = RandomQuery(23);
  for (auto _ : state) {
    auto result = index->Search(query, 10);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_HnswSearch)->RangeMultiplier(10)->Range(1000, 10000);

// Cache hit fast path: lookup that matches the first key.
void BM_CacheHit(benchmark::State& state) {
  const auto capacity = static_cast<std::size_t>(state.range(0));
  ProximityCacheOptions opts;
  opts.capacity = capacity;
  opts.tolerance = 1e9f;  // always hits
  ProximityCache cache(kDim, opts);
  const Matrix keys = RandomMatrix(capacity, kDim, 29);
  for (std::size_t r = 0; r < capacity; ++r) {
    cache.Insert(keys.Row(r), {static_cast<VectorId>(r)});
  }
  const auto query = RandomQuery(31);
  for (auto _ : state) {
    auto result = cache.Lookup(query);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_CacheHit)->RangeMultiplier(10)->Range(10, 10000);

}  // namespace
}  // namespace proximity
