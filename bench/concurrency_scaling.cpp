// A-concurrency (extension): behaviour of the shared cache under
// multi-user load — hit + coalescing rates and database-retrieval count
// as worker threads increase. Coalescing (approximate single-flight)
// keeps the number of database queries roughly flat even as concurrency
// grows, which is the multi-tenant analogue of the paper's
// "lowers the computational burden on the vector database".
//
// Usage: concurrency_scaling [corpus=6000] [tau=2] [threads=1,2,4,8]
//                            [zipf_length=2000] [quiet=true]
#include <cstdio>
#include <iostream>

#include "cache/concurrent_cache.h"
#include "common/config.h"
#include "common/csv.h"
#include "common/log.h"
#include "index/index_factory.h"
#include "llm/answer_model.h"
#include "rag/concurrent_driver.h"
#include "workload/benchmark_spec.h"
#include "workload/query_stream.h"

int main(int argc, char** argv) {
  using namespace proximity;
  const Config cfg = Config::FromArgs(argc, argv);
  if (cfg.GetBool("quiet", false)) SetLogLevel(LogLevel::kWarn);

  const auto corpus = static_cast<std::size_t>(cfg.GetInt("corpus", 6000));
  const float tau = static_cast<float>(cfg.GetDouble("tau", 2.0));
  const auto thread_counts = cfg.GetIntList("threads", {1, 2, 4, 8});

  const Workload workload = BuildWorkload(MmluLikeSpec(corpus, 42));
  HashEmbedder embedder;
  const Matrix corpus_embeddings = embedder.EmbedBatch(workload.passages);
  IndexSpec spec;
  spec.kind = "hnsw";
  spec.hnsw_ef_construction = 100;
  auto index = BuildIndex(spec, corpus_embeddings);

  QueryStreamOptions sopts;
  sopts.order = StreamOrder::kZipf;
  sopts.zipf_length =
      static_cast<std::size_t>(cfg.GetInt("zipf_length", 2000));
  sopts.seed = 1;
  const auto stream = BuildQueryStream(workload, sopts);
  std::vector<std::string> texts;
  for (const auto& e : stream) texts.push_back(e.text);
  const Matrix embeddings = embedder.EmbedBatch(texts);

  CsvTable table({"threads", "hit_rate", "coalesced", "db_retrievals",
                  "accuracy", "mean_latency_ms", "wall_ms"});

  for (std::int64_t threads : thread_counts) {
    ProximityCacheOptions copts;
    copts.capacity = 200;
    copts.tolerance = tau;
    ConcurrentProximityCache cache(embedder.dim(), copts);

    Stopwatch wall;
    const auto result = RunStreamConcurrent(
        workload, *index, cache, AnswerModel(MmluAnswerParams()), 1, stream,
        embeddings, static_cast<std::size_t>(threads));
    const double wall_ms = wall.ElapsedMillis();

    table.AddRow({threads, result.metrics.hit_rate,
                  static_cast<std::int64_t>(result.cache_stats.coalesced),
                  static_cast<std::int64_t>(result.cache_stats.retrievals),
                  result.metrics.accuracy, result.metrics.mean_latency_ms,
                  wall_ms});
    LogInfo("threads={}: hit={:.3f} retrievals={} coalesced={}", threads,
            result.metrics.hit_rate, result.cache_stats.retrievals,
            result.cache_stats.coalesced);
  }

  std::printf("# Shared-cache concurrency scaling (extension)\n");
  table.Write(std::cout);
  return 0;
}
