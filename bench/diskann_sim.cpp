// A-disk (DESIGN.md): §4.3.3 — "the speedup gains by Proximity increase as
// the latency of vector database lookups increases. … implementations such
// as DISKANN (partially) store indices on the disk, which increases
// retrieval latency … such implementations would highly benefit from the
// speedups enabled by Proximity."
//
// The MedRAG-like workload runs against an index (flat by default; pass
// index=vamana for the DiskANN in-memory core) wrapped in a
// storage-latency model, sweeping the simulated per-search delay from 0
// (RAM-resident, the paper's setup) to tens of milliseconds
// (disk-resident regime). The index is built once and shared across all
// delay configurations. Expected shape: the relative latency reduction
// converges to the hit rate, while the *absolute* savings per query keep
// growing with storage latency — the paper's "would highly benefit".
//
// Usage: diskann_sim [corpus=8000] [capacity=200] [tau=5] [seeds=3]
//                    [delays_us=0,100,1000,10000,50000] [index=flat]
//                    [quiet=true]
#include <cstdio>
#include <iostream>

#include "cache/proximity_cache.h"
#include "common/config.h"
#include "common/csv.h"
#include "common/log.h"
#include "common/stopwatch.h"
#include "embed/hash_embedder.h"
#include "index/index_factory.h"
#include "llm/answer_model.h"
#include "rag/pipeline.h"
#include "workload/benchmark_spec.h"
#include "workload/query_stream.h"

namespace proximity {
namespace {

/// Non-owning storage-latency wrapper: delegates to a shared inner index
/// and charges a fixed virtual delay per search (cf. SlowStorageIndex,
/// which owns its inner index; here the expensive-to-build graph is
/// shared across delay configurations).
class BorrowedSlowIndex final : public VectorIndex {
 public:
  BorrowedSlowIndex(const VectorIndex* inner, Nanos delay_ns,
                    VirtualClock* clock)
      : inner_(inner), delay_ns_(delay_ns), clock_(clock) {}

  std::size_t dim() const noexcept override { return inner_->dim(); }
  Metric metric() const noexcept override { return inner_->metric(); }
  std::size_t size() const noexcept override { return inner_->size(); }
  VectorId Add(std::span<const float>) override {
    throw std::logic_error("BorrowedSlowIndex is read-only");
  }
  std::string Describe() const override {
    return "borrowed_slow(" + inner_->Describe() + ")";
  }

  std::vector<Neighbor> Search(std::span<const float> query,
                               std::size_t k) const override {
    auto results = inner_->Search(query, k);
    clock_->Advance(delay_ns_);
    return results;
  }

 private:
  const VectorIndex* inner_;
  Nanos delay_ns_;
  VirtualClock* clock_;
};

}  // namespace
}  // namespace proximity

int main(int argc, char** argv) {
  using namespace proximity;
  const Config cfg = Config::FromArgs(argc, argv);
  if (cfg.GetBool("quiet", false)) SetLogLevel(LogLevel::kWarn);

  const auto corpus = static_cast<std::size_t>(cfg.GetInt("corpus", 8000));
  const auto capacity = static_cast<std::size_t>(cfg.GetInt("capacity", 200));
  const float tau = static_cast<float>(cfg.GetDouble("tau", 5.0));
  const auto seeds = static_cast<std::size_t>(cfg.GetInt("seeds", 3));
  const auto delays_us =
      cfg.GetIntList("delays_us", {0, 100, 1000, 10000, 50000});

  const Workload workload = BuildWorkload(MedragLikeSpec(corpus, 42));
  HashEmbedder embedder;
  IndexSpec ispec;
  ispec.kind = cfg.GetString("index", "flat");
  ispec.vamana_beam = static_cast<std::size_t>(cfg.GetInt("beam", 48));
  LogInfo("building {} over {} passages (once, shared across delays)",
          ispec.kind, workload.passages.size());
  auto inner = BuildIndex(ispec, embedder.EmbedBatch(workload.passages));

  // Pre-embedded per-seed streams, shared by every delay configuration.
  std::vector<std::vector<StreamEntry>> streams;
  std::vector<Matrix> stream_embeddings;
  for (std::size_t s = 0; s < seeds; ++s) {
    QueryStreamOptions sopts;
    sopts.seed = 1 + s;
    streams.push_back(BuildQueryStream(workload, sopts));
    std::vector<std::string> texts;
    for (const auto& e : streams.back()) texts.push_back(e.text);
    stream_embeddings.push_back(embedder.EmbedBatch(texts));
  }

  CsvTable table({"storage_delay_us", "baseline_latency_ms",
                  "cached_latency_ms", "latency_reduction_pct",
                  "saved_ms_per_query", "hit_rate", "accuracy"});

  VirtualClock clock;
  for (std::int64_t delay_us : delays_us) {
    const BorrowedSlowIndex slow(inner.get(), delay_us * 1000, &clock);

    auto run = [&](double run_tau, std::uint64_t seed) {
      ProximityCacheOptions copts;
      copts.capacity = capacity;
      copts.tolerance = static_cast<float>(run_tau);
      copts.metric = slow.metric();
      copts.seed = seed;
      ProximityCache cache(embedder.dim(), copts);
      Retriever retriever(&slow, &cache, &clock,
                          RetrieverOptions{.top_k = 10});
      RagPipeline pipeline(&workload, &embedder, &retriever,
                           AnswerModel(MedragAnswerParams()), seed);
      const std::size_t slot = static_cast<std::size_t>(seed - 1);
      return pipeline.RunStream(streams[slot], stream_embeddings[slot]);
    };

    double base_lat = 0, cached_lat = 0, hit = 0, acc = 0;
    for (std::size_t s = 0; s < seeds; ++s) {
      const RunMetrics baseline = run(0.0, 1 + s);
      const RunMetrics cached = run(tau, 1 + s);
      base_lat += baseline.mean_latency_ms;
      cached_lat += cached.mean_latency_ms;
      hit += cached.hit_rate;
      acc += cached.accuracy;
    }
    const double n = static_cast<double>(seeds);
    base_lat /= n;
    cached_lat /= n;
    const double reduction =
        base_lat > 0 ? (1.0 - cached_lat / base_lat) * 100.0 : 0.0;
    table.AddRow({delay_us, base_lat, cached_lat, reduction,
                  base_lat - cached_lat, hit / n, acc / n});
    LogInfo("delay={}us: baseline={:.3f}ms cached={:.3f}ms reduction={:.1f}%",
            delay_us, base_lat, cached_lat, reduction);
  }

  std::printf(
      "# DiskANN-style storage-latency sweep (paper remark, §4.3.3)\n");
  table.Write(std::cout);
  return 0;
}
