// Reproduces Figure 3, bottom row (MedRAG): accuracy, cache hit rate, and
// retrieval latency for c in {10,50,100,200,300} x tau in {0,2,5,10}.
//
// Paper setup (§4.2): 200 PubMedQA questions (x4 variants, shuffled)
// against PubMed served by FAISS-FLAT — the exact-scan index is what makes
// MedRAG retrieval so much slower than MMLU's HNSW (4.8s vs 101ms in the
// paper), and hence what makes the cache speedup larger (up to 70.8%).
//
// Usage: fig3_medrag [corpus=20000] [seeds=5] [capacities=...]
//                    [tolerances=0,2,5,10] [quiet=true]
#include "bench/fig3_common.h"
#include "llm/answer_model.h"
#include "workload/benchmark_spec.h"

int main(int argc, char** argv) {
  using namespace proximity;
  const Config cfg = Config::FromArgs(argc, argv);

  SweepConfig sc;
  sc.workload_spec = MedragLikeSpec(
      static_cast<std::size_t>(cfg.GetInt("corpus", 20000)),
      static_cast<std::uint64_t>(cfg.GetInt("workload_seed", 42)));
  sc.index_spec.kind = cfg.GetString("index", "flat");
  sc.answer_params = MedragAnswerParams();
  sc.tolerances = {0, 2, 5, 10};  // the paper's MedRAG tau set
  bench::ApplyCommonOverrides(cfg, sc);

  return bench::RunFig3("Figure 3 (bottom row): MedRAG benchmark",
                        bench::Fig3Row::kMedrag, std::move(sc),
                        cfg.GetBool("plot", false));
}
