// A-shard (DESIGN.md §8): throughput of the sharded scatter-gather layer.
//
// Sweeps shard count × microbatch size over a synthetic corpus and
// reports queries/sec of ShardedIndex::SearchBatch — the grouped-miss
// path the serving driver issues. On a multi-core host throughput should
// rise monotonically from 1 to 4 shards (the acceptance gate recorded in
// BENCH_shard.json as "monotonic_1_to_4"); when the gate cannot run the
// field is null and "skip_reason" says why, machine-readably.
//
// --threads=N forces the shared pool size before it is built, so the
// gate can run on small hosts (4 pool threads over 2 cores still
// exercises the scatter-gather paths, if not the speedup itself).
//
// Flags: --json=PATH --rows=N --dim=N --queries=N --k=N --quick
//        --threads=N
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "index/flat_index.h"
#include "index/sharded_index.h"
#include "vecmath/matrix.h"

namespace proximity {
namespace {

double NowNs() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::nano>(
             Clock::now().time_since_epoch())
      .count();
}

Matrix RandomMatrix(std::size_t rows, std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(0, dim);
  m.Reserve(rows);
  std::vector<float> row(dim);
  for (std::size_t r = 0; r < rows; ++r) {
    for (auto& x : row) x = static_cast<float>(rng.Gaussian(0, 1));
    m.AppendRow(row);
  }
  return m;
}

struct Cell {
  std::size_t shards = 0;
  std::size_t batch = 0;
  double qps = 0.0;
  double ns_per_query = 0.0;
};

// Runs all queries through SearchBatch in chunks of `batch`; returns the
// median-of-3 qps so one scheduler hiccup does not distort a cell.
double MeasureQps(const ShardedIndex& index, const Matrix& queries,
                  std::size_t batch, std::size_t k) {
  const std::size_t q_total = queries.rows();
  double runs[3];
  for (double& run : runs) {
    const double t0 = NowNs();
    for (std::size_t lo = 0; lo < q_total; lo += batch) {
      const std::size_t hi = std::min(q_total, lo + batch);
      Matrix chunk(0, queries.dim());
      chunk.Reserve(hi - lo);
      for (std::size_t q = lo; q < hi; ++q) chunk.AppendRow(queries.Row(q));
      const auto results = index.SearchBatch(chunk, k);
      if (results.size() != hi - lo) std::abort();  // keep results alive
    }
    const double elapsed_ns = NowNs() - t0;
    run = static_cast<double>(q_total) / (elapsed_ns * 1e-9);
  }
  std::sort(runs, runs + 3);
  return runs[1];
}

int Main(int argc, char** argv) {
  std::string json_path = "BENCH_shard.json";
  std::size_t threads_override = 0;
  std::size_t rows = 100000;
  std::size_t dim = 64;
  std::size_t num_queries = 256;
  std::size_t k = 10;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--rows=", 7) == 0) {
      rows = static_cast<std::size_t>(std::atoll(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--dim=", 6) == 0) {
      dim = static_cast<std::size_t>(std::atoll(argv[i] + 6));
    } else if (std::strncmp(argv[i], "--queries=", 10) == 0) {
      num_queries = static_cast<std::size_t>(std::atoll(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--k=", 4) == 0) {
      k = static_cast<std::size_t>(std::atoll(argv[i] + 4));
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads_override =
          static_cast<std::size_t>(std::atoll(argv[i] + 10));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      rows = 20000;
      num_queries = 64;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  if (threads_override != 0 &&
      !ThreadPool::SetSharedSize(threads_override)) {
    std::fprintf(stderr,
                 "shard_scaling: --threads too late, pool already built\n");
    return 2;
  }

  const std::size_t cores = std::thread::hardware_concurrency();
  const std::size_t pool = ThreadPool::Shared().size();
  std::printf("shard_scaling: rows=%zu dim=%zu queries=%zu k=%zu "
              "cores=%zu pool=%zu\n",
              rows, dim, num_queries, k, cores, pool);

  const Matrix corpus = RandomMatrix(rows, dim, 101);
  const Matrix queries = RandomMatrix(num_queries, dim, 202);

  const std::size_t shard_counts[] = {1, 2, 4, 8};
  const std::size_t batch_sizes[] = {1, 8, 32, 128};
  IndexSpec spec;
  spec.kind = "flat";

  std::vector<Cell> cells;
  for (const std::size_t S : shard_counts) {
    ShardedIndexOptions opts;
    opts.num_shards = S;
    const auto index = BuildShardedIndex(spec, corpus, opts);
    for (const std::size_t B : batch_sizes) {
      Cell cell;
      cell.shards = S;
      cell.batch = B;
      cell.qps = MeasureQps(*index, queries, B, k);
      cell.ns_per_query = 1e9 / cell.qps;
      cells.push_back(cell);
      std::printf("shards=%zu batch=%-4zu qps=%10.1f ns/query=%10.1f\n", S,
                  B, cell.qps, cell.ns_per_query);
    }
  }

  // Acceptance check at the largest batch: qps(1) < qps(2) < qps(4).
  // Only meaningful with >= 4 threads to scale onto; a --threads
  // override counts, so the gate can run on small hosts.
  double qps_by_shards[3] = {0, 0, 0};
  for (const auto& c : cells) {
    if (c.batch != batch_sizes[3]) continue;
    if (c.shards == 1) qps_by_shards[0] = c.qps;
    if (c.shards == 2) qps_by_shards[1] = c.qps;
    if (c.shards == 4) qps_by_shards[2] = c.qps;
  }
  const bool monotonic = qps_by_shards[0] < qps_by_shards[1] &&
                         qps_by_shards[1] < qps_by_shards[2];
  const bool gate_runs = cores >= 4 || pool >= 4;
  const char* verdict = gate_runs ? (monotonic ? "true" : "false")
                                  : "null";
  const char* skip_reason =
      gate_runs ? "null"
                : "\"cores<4: pass --threads=4 to run the gate anyway\"";
  std::printf("monotonic 1->4 shards at batch=%zu: %s%s\n", batch_sizes[3],
              verdict, gate_runs ? "" : " (skipped: cores<4)");

  std::ofstream os(json_path);
  os << "{\n  \"bench\": \"shard_scaling\",\n"
     << "  \"rows\": " << rows << ",\n  \"dim\": " << dim
     << ",\n  \"queries\": " << num_queries << ",\n  \"k\": " << k
     << ",\n  \"cores\": " << cores << ",\n  \"pool_threads\": " << pool
     << ",\n  \"monotonic_1_to_4\": " << verdict
     << ",\n  \"skip_reason\": " << skip_reason << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& c = cells[i];
    os << "    {\"shards\": " << c.shards << ", \"batch\": " << c.batch
       << ", \"qps\": " << c.qps << ", \"ns_per_query\": " << c.ns_per_query
       << "}" << (i + 1 < cells.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace proximity

int main(int argc, char** argv) { return proximity::Main(argc, argv); }
