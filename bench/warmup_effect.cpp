// A-warmup (extension): cold start vs history-based warm-up.
//
// A restarted cache serves its first queries at full database price. This
// bench measures the early-stream hit rate under three starts:
//   cold     — empty cache
//   warmed   — seeded via WarmCacheFromHistory from yesterday's queries
//              (a different shuffle/prefix realization of the workload)
//   snapshot — yesterday's cache restored verbatim (upper bound)
// and reports the hit rate over the first `window` queries plus overall.
//
// Usage: warmup_effect [corpus=8000] [capacity=200] [tau=2] [window=100]
//                      [budget=100] [quiet=true]
#include <cstdio>
#include <iostream>
#include <sstream>

#include "cache/proximity_cache.h"
#include "common/config.h"
#include "common/csv.h"
#include "common/log.h"
#include "embed/hash_embedder.h"
#include "index/index_factory.h"
#include "rag/retriever.h"
#include "rag/warmup.h"
#include "workload/benchmark_spec.h"
#include "workload/query_stream.h"

int main(int argc, char** argv) {
  using namespace proximity;
  const Config cfg = Config::FromArgs(argc, argv);
  if (cfg.GetBool("quiet", false)) SetLogLevel(LogLevel::kWarn);

  const auto corpus = static_cast<std::size_t>(cfg.GetInt("corpus", 8000));
  const auto capacity = static_cast<std::size_t>(cfg.GetInt("capacity", 200));
  const float tau = static_cast<float>(cfg.GetDouble("tau", 2.0));
  const auto window = static_cast<std::size_t>(cfg.GetInt("window", 100));
  const auto budget = static_cast<std::size_t>(cfg.GetInt("budget", 100));

  const Workload workload = BuildWorkload(MmluLikeSpec(corpus, 42));
  HashEmbedder embedder;
  const Matrix corpus_embeddings = embedder.EmbedBatch(workload.passages);
  IndexSpec spec;
  spec.kind = "hnsw";
  spec.hnsw_ef_construction = 100;
  auto index = BuildIndex(spec, corpus_embeddings);

  auto build_stream = [&](std::uint64_t seed) {
    QueryStreamOptions sopts;
    sopts.seed = seed;
    auto stream = BuildQueryStream(workload, sopts);
    std::vector<std::string> texts;
    for (const auto& e : stream) texts.push_back(e.text);
    return std::make_pair(std::move(stream), embedder.EmbedBatch(texts));
  };
  const auto [yesterday, yesterday_embeddings] = build_stream(7);
  const auto [today, today_embeddings] = build_stream(8);

  auto retrieve = [&](std::span<const float> q) {
    std::vector<VectorId> ids;
    for (const auto& n : index->Search(q, 10)) ids.push_back(n.id);
    return ids;
  };

  ProximityCacheOptions copts;
  copts.capacity = capacity;
  copts.tolerance = tau;
  copts.metric = index->metric();

  // Yesterday's session, used for both the snapshot and the history.
  ProximityCache yesterday_cache(embedder.dim(), copts);
  {
    Retriever retriever(index.get(), &yesterday_cache, nullptr,
                        {.top_k = 10});
    for (std::size_t i = 0; i < yesterday.size(); ++i) {
      retriever.Retrieve(yesterday_embeddings.Row(i));
    }
  }
  std::stringstream snapshot;
  yesterday_cache.SaveTo(snapshot);

  CsvTable table({"start", "seed_retrievals", "early_hit_rate",
                  "overall_hit_rate"});

  auto run_today = [&](const char* label, ProximityCache& cache,
                       std::size_t seed_retrievals) {
    Retriever retriever(index.get(), &cache, nullptr, {.top_k = 10});
    std::size_t early_hits = 0, hits = 0;
    for (std::size_t i = 0; i < today.size(); ++i) {
      const bool hit = retriever.Retrieve(today_embeddings.Row(i)).cache_hit;
      hits += hit ? 1 : 0;
      if (i < window) early_hits += hit ? 1 : 0;
    }
    table.AddRow(
        {std::string(label), static_cast<std::int64_t>(seed_retrievals),
         static_cast<double>(early_hits) /
             static_cast<double>(std::min(window, today.size())),
         static_cast<double>(hits) / static_cast<double>(today.size())});
  };

  // Cold.
  ProximityCache cold(embedder.dim(), copts);
  run_today("cold", cold, 0);

  // History warm-up: cluster yesterday's query embeddings.
  ProximityCache warmed(embedder.dim(), copts);
  WarmupOptions wopts;
  wopts.budget = budget;
  const auto report =
      WarmCacheFromHistory(warmed, yesterday_embeddings, retrieve, wopts);
  LogInfo("warmup: seeded {} entries, estimated coverage {:.3f}",
          report.entries_seeded, report.estimated_coverage);
  run_today("warmed", warmed, report.retrievals_performed);

  // Snapshot restore.
  ProximityCache restored = ProximityCache::LoadFrom(snapshot);
  run_today("snapshot", restored, 0);

  std::printf("# Cold vs warmed vs snapshot start (extension)\n");
  table.Write(std::cout);
  return 0;
}
