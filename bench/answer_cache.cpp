// A-answer (DESIGN.md §15): acceptance gates for the answer-level
// semantic cache with grounded reuse routing, machine-readable in
// BENCH_answer.json.
//
// Setup: an MMLU-like workload over a storage-latency index (fixed
// per-search delay on a VirtualClock, the disk-resident regime of
// §4.3.3 where reuse matters most), no retrieval-tier cache — every
// database search pays the storage delay, so TTFT differences come
// from the answer tier alone. Generation is modeled at a fixed cost;
// on answer-cache hits the draft overlaps the grounding retrieval
// (AnswerReuseOptions::overlap).
//
// Two gates, both judged on the SAME shuffled variant stream:
//
//   1. TTFT: within the answer-cache run, mean TTFT of answer-hit
//      queries (served or patched) must be at least 2x better than
//      mean TTFT of the rest (miss/regenerate, which pay retrieval
//      plus the full generation cost): "ttft_speedup" >= 2.
//
//   2. Accuracy: end-to-end accuracy of the answer-cache run must stay
//      within 1 point of a baseline run (same stream, same seeds, no
//      answer tier): "accuracy_delta_pp" <= 1.
//
// The router's serve/patch/regenerate split and the overlap draft
// accounting (drafts == commits + discards) are reported alongside.
//
// Flags: --json=PATH --corpus=N --tau=F --capacity=N --quick
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cache/answer_cache.h"
#include "cache/reuse_router.h"
#include "common/log.h"
#include "common/stopwatch.h"
#include "embed/hash_embedder.h"
#include "index/index_factory.h"
#include "index/slow_storage_index.h"
#include "llm/answer_model.h"
#include "rag/pipeline.h"
#include "workload/benchmark_spec.h"
#include "workload/query_stream.h"

namespace proximity {
namespace {

int Main(int argc, char** argv) {
  std::string json_path = "BENCH_answer.json";
  std::size_t corpus = 8000;
  double tau = 2.0;
  std::size_t capacity = 400;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--corpus=", 9) == 0) {
      corpus = static_cast<std::size_t>(std::atoll(argv[i] + 9));
    } else if (std::strncmp(argv[i], "--tau=", 6) == 0) {
      tau = std::atof(argv[i] + 6);
    } else if (std::strncmp(argv[i], "--capacity=", 11) == 0) {
      capacity = static_cast<std::size_t>(std::atoll(argv[i] + 11));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      corpus = 3000;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  // The storage model and generation cost are fixed: the gates compare
  // query classes within one configuration, not absolute numbers.
  constexpr Nanos kStorageFixedNs = 150'000;      // 150 us per search
  constexpr Nanos kStoragePerResultNs = 2'000;    // + 2 us per candidate
  // Generation dominates retrieval in a real deployment; 5 ms keeps
  // that ordering against the real (wall-clock) flat-scan cost that
  // retrieval latency also includes.
  constexpr Nanos kGenerationCostNs = 5'000'000;  // 5 ms full answer
  constexpr double kDraftFraction = 0.25;

  std::printf("answer_cache: corpus=%zu tau=%.2f capacity=%zu\n", corpus,
              tau, capacity);

  const Workload workload = BuildWorkload(MmluLikeSpec(corpus, 42));
  HashEmbedder embedder;
  VirtualClock clock;
  IndexSpec ispec;  // flat: exact search, so drift profiles are stable
  LogInfo("building {} over {} passages", ispec.kind,
          workload.passages.size());
  SlowStorageIndex index(
      BuildIndex(ispec, embedder.EmbedBatch(workload.passages)),
      StorageModel{kStorageFixedNs, kStoragePerResultNs}, &clock);

  QueryStreamOptions sopts;
  sopts.seed = 1;  // the paper's protocol: 4 variants, global shuffle
  const auto stream = BuildQueryStream(workload, sopts);
  std::vector<std::string> texts;
  texts.reserve(stream.size());
  for (const auto& e : stream) texts.push_back(e.text);
  const Matrix embeddings = embedder.EmbedBatch(texts);

  // --- Baseline: no answer tier, same stream, same answer seed. TTFT
  // is modeled the same way (retrieval + full generation per query).
  Retriever base_retriever(&index, nullptr, &clock, {.top_k = 10});
  RagPipeline baseline(&workload, &embedder, &base_retriever,
                       AnswerModel(MmluAnswerParams()), 1);
  double base_correct = 0, base_ttft_ns = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const QueryResult r = baseline.ProcessQuery(stream[i],
                                                embeddings.Row(i), i);
    base_correct += r.correct ? 1 : 0;
    base_ttft_ns +=
        static_cast<double>(r.retrieval_latency_ns + kGenerationCostNs);
  }

  // --- Answer-cache run: same stream, reuse tier armed.
  AnswerCacheOptions aopts;
  aopts.capacity = capacity;
  aopts.tolerance = static_cast<float>(tau);
  aopts.metric = index.metric();
  AnswerCache acache(embedder.dim(), aopts);
  ReuseRouter router;  // default serve/patch thresholds
  Retriever retriever(&index, nullptr, &clock, {.top_k = 10});
  RagPipeline pipeline(&workload, &embedder, &retriever,
                       AnswerModel(MmluAnswerParams()), 1);
  AnswerReuseOptions ropts;
  ropts.overlap = true;
  ropts.generation_cost_ns = kGenerationCostNs;
  ropts.draft_fraction = kDraftFraction;
  pipeline.EnableAnswerReuse(&acache, &router, ropts);

  double correct = 0;
  double hit_ttft_ns = 0, miss_ttft_ns = 0;
  std::size_t hit_n = 0, miss_n = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const QueryResult r = pipeline.ProcessQuery(stream[i],
                                                embeddings.Row(i), i);
    correct += r.correct ? 1 : 0;
    if (r.answer_hit) {
      hit_ttft_ns += static_cast<double>(r.ttft_ns);
      ++hit_n;
    } else {
      miss_ttft_ns += static_cast<double>(r.ttft_ns);
      ++miss_n;
    }
  }

  const double n = static_cast<double>(stream.size());
  const double base_accuracy = base_correct / n;
  const double accuracy = correct / n;
  const double accuracy_delta_pp = std::abs(accuracy - base_accuracy) * 100;
  const double hit_ttft_us = hit_n ? hit_ttft_ns / hit_n * 1e-3 : 0;
  const double miss_ttft_us = miss_n ? miss_ttft_ns / miss_n * 1e-3 : 0;
  const double ttft_speedup = hit_ttft_us > 0 ? miss_ttft_us / hit_ttft_us
                                              : 0;
  const double answer_hit_rate = static_cast<double>(hit_n) / n;
  const AnswerReuseStats& rs = pipeline.answer_stats();
  const bool drafts_balanced = rs.drafts == rs.commits + rs.discards;

  const bool ttft_gate = ttft_speedup >= 2.0;
  const bool accuracy_gate = accuracy_delta_pp <= 1.0;

  std::printf("baseline: accuracy=%.4f mean_ttft_us=%.1f\n", base_accuracy,
              base_ttft_ns / n * 1e-3);
  std::printf("answer:   accuracy=%.4f answer_hit_rate=%.3f\n", accuracy,
              answer_hit_rate);
  std::printf("ttft:     hit=%.1fus miss=%.1fus speedup=%.2fx\n",
              hit_ttft_us, miss_ttft_us, ttft_speedup);
  std::printf("router:   served=%llu patched=%llu regenerated=%llu "
              "stale=%llu\n",
              static_cast<unsigned long long>(rs.served),
              static_cast<unsigned long long>(rs.patched),
              static_cast<unsigned long long>(rs.regenerated),
              static_cast<unsigned long long>(rs.stale_hits));
  std::printf("overlap:  drafts=%llu commits=%llu discards=%llu (%s)\n",
              static_cast<unsigned long long>(rs.drafts),
              static_cast<unsigned long long>(rs.commits),
              static_cast<unsigned long long>(rs.discards),
              drafts_balanced ? "balanced" : "IMBALANCED");
  std::printf("gates:    ttft_speedup>=2 %s | accuracy_delta_pp<=1 %s\n",
              ttft_gate ? "PASS" : "FAIL",
              accuracy_gate ? "PASS" : "FAIL");

  std::ofstream os(json_path);
  os << "{\n"
     << "  \"corpus\": " << corpus << ",\n"
     << "  \"queries\": " << stream.size() << ",\n"
     << "  \"tau\": " << tau << ",\n"
     << "  \"capacity\": " << capacity << ",\n"
     << "  \"generation_cost_us\": " << kGenerationCostNs / 1000 << ",\n"
     << "  \"baseline_accuracy\": " << base_accuracy << ",\n"
     << "  \"answer_accuracy\": " << accuracy << ",\n"
     << "  \"accuracy_delta_pp\": " << accuracy_delta_pp << ",\n"
     << "  \"answer_hit_rate\": " << answer_hit_rate << ",\n"
     << "  \"hit_ttft_us\": " << hit_ttft_us << ",\n"
     << "  \"miss_ttft_us\": " << miss_ttft_us << ",\n"
     << "  \"ttft_speedup\": " << ttft_speedup << ",\n"
     << "  \"served\": " << rs.served << ",\n"
     << "  \"patched\": " << rs.patched << ",\n"
     << "  \"regenerated\": " << rs.regenerated << ",\n"
     << "  \"drafts\": " << rs.drafts << ",\n"
     << "  \"commits\": " << rs.commits << ",\n"
     << "  \"discards\": " << rs.discards << ",\n"
     << "  \"drafts_balanced\": " << (drafts_balanced ? "true" : "false")
     << ",\n"
     << "  \"ttft_gate\": " << (ttft_gate ? "true" : "false") << ",\n"
     << "  \"accuracy_gate\": " << (accuracy_gate ? "true" : "false")
     << "\n}\n";
  std::printf("wrote %s\n", json_path.c_str());

  return ttft_gate && accuracy_gate && drafts_balanced ? 0 : 1;
}

}  // namespace
}  // namespace proximity

int main(int argc, char** argv) { return proximity::Main(argc, argv); }
