// Shared load-generation harness for the serving benches (DESIGN.md
// §9, §14): serve_load drives the single-process stack with it and
// cluster_scaling drives the router front-end — same closed-loop
// driver, same stats, so the single-process and routed numbers in
// BENCH_net.json and BENCH_cluster.json are directly comparable.
//
// LoadStats keeps the latency split per status code, not just per
// outcome count. The non-OK codes have very different latency shapes —
// sheds return at admission speed, deadline answers at the deadline,
// and UNAVAILABLE spikes exactly during a failover window — and
// averaging them into one histogram hides precisely the transients the
// cluster bench exists to measure.
#pragma once

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "net/client.h"
#include "net/protocol.h"
#include "obs/trace.h"

namespace proximity::bench {

/// Client-observed load statistics with a per-status-code latency
/// split. `all` covers every answered request; `hit`/`miss` split the
/// OK answers by the cache-hit response flag; `by_status[s]` holds the
/// latency histogram of exactly the answers with that status.
struct LoadStats {
  LatencyHistogram all, hit, miss;
  LatencyHistogram ok_lat, shed_lat, deadline_lat, unavailable_lat,
      other_lat;
  std::uint64_t ok = 0, shed = 0, deadline = 0, unavailable = 0,
                other = 0, transport = 0;

  void Merge(const LoadStats& o) {
    all.Merge(o.all);
    hit.Merge(o.hit);
    miss.Merge(o.miss);
    ok_lat.Merge(o.ok_lat);
    shed_lat.Merge(o.shed_lat);
    deadline_lat.Merge(o.deadline_lat);
    unavailable_lat.Merge(o.unavailable_lat);
    other_lat.Merge(o.other_lat);
    ok += o.ok;
    shed += o.shed;
    deadline += o.deadline;
    unavailable += o.unavailable;
    other += o.other;
    transport += o.transport;
  }

  void Record(const net::Response& resp, Nanos ns) {
    all.Record(ns);
    switch (resp.status) {
      case RequestStatus::kOk:
        ++ok;
        ok_lat.Record(ns);
        (resp.cache_hit() ? hit : miss).Record(ns);
        break;
      case RequestStatus::kResourceExhausted:
        ++shed;
        shed_lat.Record(ns);
        break;
      case RequestStatus::kDeadlineExceeded:
        ++deadline;
        deadline_lat.Record(ns);
        break;
      case RequestStatus::kUnavailable:
        ++unavailable;
        unavailable_lat.Record(ns);
        break;
      default:
        ++other;
        other_lat.Record(ns);
        break;
    }
  }
};

/// One closed-loop measurement cell.
struct ClosedCell {
  std::size_t conns = 0;
  std::size_t requests = 0;
  double wall_s = 0;
  LoadStats stats;
};

struct ClosedLoopOptions {
  std::size_t conns = 1;
  std::size_t requests = 0;
  /// Request-id offset (keeps ids unique across phases of one run).
  std::uint64_t id_base = 0;
  /// Open a fresh trace per request so client + server spans stitch.
  bool trace = true;
  /// Keep sending after a non-OK answer. The cluster failover bench
  /// needs this: a request answered UNAVAILABLE mid-failover is a data
  /// point, not a reason to stop offering load.
  bool continue_on_error = true;
};

/// Drives `opts.requests` requests over `opts.conns` closed-loop
/// connections against host:port, cycling through `texts`. Each
/// connection sends its next request the moment the previous response
/// lands. A transport failure (dead connection) reconnects once per
/// request so a restarted server keeps absorbing load; requests lost to
/// transport failures count in `stats.transport`.
inline ClosedCell RunClosedLoop(const std::string& host, std::uint16_t port,
                                const std::vector<std::string>& texts,
                                const ClosedLoopOptions& opts) {
  using SteadyClock = std::chrono::steady_clock;
  ClosedCell cell;
  cell.conns = opts.conns;
  cell.requests = opts.requests;
  std::vector<LoadStats> per_conn(opts.conns);
  std::vector<std::thread> threads;
  threads.reserve(opts.conns);
  const auto t0 = SteadyClock::now();
  for (std::size_t c = 0; c < opts.conns; ++c) {
    threads.emplace_back([&, c] {
      LoadStats& s = per_conn[c];
      net::Client client;
      if (!client.Connect(host, port)) {
        ++s.transport;
        return;
      }
      for (std::size_t i = c; i < opts.requests; i += opts.conns) {
        net::Request req;
        req.id = opts.id_base + i + 1;
        req.text = texts[i % texts.size()];
        net::Response resp;
        const auto sent = SteadyClock::now();
        bool called;
        {
          const obs::ScopedTraceContext scope(
              opts.trace ? obs::TraceContext{obs::NewTraceId(), 0}
                         : obs::TraceContext{});
          called = client.Call(req, &resp);
        }
        if (!called) {
          ++s.transport;
          // One reconnect attempt per lost request: a router or server
          // that just restarted should keep seeing offered load.
          if (!client.Connect(host, port)) return;
          continue;
        }
        s.Record(resp, std::chrono::duration_cast<std::chrono::nanoseconds>(
                           SteadyClock::now() - sent)
                           .count());
        if (resp.status != RequestStatus::kOk && !opts.continue_on_error) {
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  cell.wall_s =
      std::chrono::duration<double>(SteadyClock::now() - t0).count();
  for (const auto& s : per_conn) cell.stats.Merge(s);
  return cell;
}

inline double LoadMs(double ns) { return ns / 1e6; }

inline void EmitStatusJson(std::ostream& os, const char* key,
                           const LatencyHistogram& h) {
  os << "\"" << key << "\": {\"n\": " << h.count()
     << ", \"p50_ms\": " << LoadMs(h.QuantileNanos(0.50))
     << ", \"p99_ms\": " << LoadMs(h.QuantileNanos(0.99)) << "}";
}

/// Emits the fields of one measurement cell (no surrounding braces):
/// aggregate rates, the hit/miss split, and the per-status latency
/// split under "by_status".
inline void EmitStatsJson(std::ostream& os, const LoadStats& s,
                          double wall_s) {
  const double answered = static_cast<double>(s.all.count());
  os << "\"achieved_qps\": " << (wall_s > 0 ? answered / wall_s : 0.0)
     << ", \"answered\": " << s.all.count() << ", \"ok\": " << s.ok
     << ", \"shed\": " << s.shed << ", \"deadline_exceeded\": " << s.deadline
     << ", \"unavailable\": " << s.unavailable
     << ", \"transport_errors\": " << s.transport
     << ", \"shed_rate\": "
     << (answered > 0 ? static_cast<double>(s.shed) / answered : 0.0)
     << ", \"p50_ms\": " << LoadMs(s.all.QuantileNanos(0.50))
     << ", \"p99_ms\": " << LoadMs(s.all.QuantileNanos(0.99))
     << ", \"hit\": {\"n\": " << s.hit.count()
     << ", \"p50_ms\": " << LoadMs(s.hit.QuantileNanos(0.50))
     << ", \"p99_ms\": " << LoadMs(s.hit.QuantileNanos(0.99))
     << "}, \"miss\": {\"n\": " << s.miss.count()
     << ", \"p50_ms\": " << LoadMs(s.miss.QuantileNanos(0.50))
     << ", \"p99_ms\": " << LoadMs(s.miss.QuantileNanos(0.99))
     << "}, \"by_status\": {";
  EmitStatusJson(os, "ok", s.ok_lat);
  os << ", ";
  EmitStatusJson(os, "resource_exhausted", s.shed_lat);
  os << ", ";
  EmitStatusJson(os, "deadline_exceeded", s.deadline_lat);
  os << ", ";
  EmitStatusJson(os, "unavailable", s.unavailable_lat);
  os << ", ";
  EmitStatusJson(os, "other", s.other_lat);
  os << "}";
}

}  // namespace proximity::bench
