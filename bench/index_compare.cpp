// A-index (DESIGN.md): §2.2 premise — "NNS requires comparing query
// embeddings with millions or billions of stored vectors, which becomes
// expensive as the database grows. Even with optimized index structures
// such as HNSW or quantization-based approaches, maintaining low-latency
// retrieval while ensuring high recall remains difficult."
//
// This bench measures that trade-off across our four index substrates:
// exact flat scan, HNSW, IVF-Flat, and IVF-PQ — query latency and
// recall@10 (vs flat ground truth) as the corpus grows. It documents the
// latency regimes the Proximity cache is bypassing in each configuration.
//
// Usage: index_compare [sizes=4000,12000] [queries=100] [dim=768]
//                      [quiet=true]
#include <cstdio>
#include <iostream>

#include "common/config.h"
#include "common/csv.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "index/index_factory.h"
#include "index/recall.h"

int main(int argc, char** argv) {
  using namespace proximity;
  const Config cfg = Config::FromArgs(argc, argv);
  if (cfg.GetBool("quiet", false)) SetLogLevel(LogLevel::kWarn);

  const auto sizes = cfg.GetIntList("sizes", {4000, 12000});
  const auto num_queries =
      static_cast<std::size_t>(cfg.GetInt("queries", 100));
  const auto dim = static_cast<std::size_t>(cfg.GetInt("dim", 768));
  constexpr std::size_t kTopK = 10;

  CsvTable table({"index", "corpus_size", "build_ms", "mean_query_ms",
                  "p99_query_ms", "recall_at_10"});

  for (std::int64_t size : sizes) {
    const auto n = static_cast<std::size_t>(size);

    // Clustered corpus (mixture of Gaussians) — harder for ANN than pure
    // noise and closer to embedding-space structure.
    Rng rng(42);
    constexpr std::size_t kClusters = 32;
    Matrix centers(kClusters, dim);
    for (std::size_t c = 0; c < kClusters; ++c) {
      for (auto& x : centers.MutableRow(c)) {
        x = static_cast<float>(rng.Gaussian(0, 1));
      }
    }
    Matrix corpus(n, dim);
    for (std::size_t r = 0; r < n; ++r) {
      const auto center = centers.Row(rng.Below(kClusters));
      auto row = corpus.MutableRow(r);
      for (std::size_t j = 0; j < dim; ++j) {
        row[j] = center[j] + static_cast<float>(rng.Gaussian(0, 0.3));
      }
    }
    Matrix queries(num_queries, dim);
    for (std::size_t q = 0; q < num_queries; ++q) {
      const auto center = centers.Row(rng.Below(kClusters));
      auto row = queries.MutableRow(q);
      for (std::size_t j = 0; j < dim; ++j) {
        row[j] = center[j] + static_cast<float>(rng.Gaussian(0, 0.3));
      }
    }

    // Ground truth from the exact index.
    IndexSpec flat_spec;
    flat_spec.kind = "flat";
    auto flat = BuildIndex(flat_spec, corpus);
    std::vector<std::vector<Neighbor>> truth(num_queries);
    for (std::size_t q = 0; q < num_queries; ++q) {
      truth[q] = flat->Search(queries.Row(q), kTopK);
    }

    for (const char* kind : {"flat", "hnsw", "vamana", "ivf_flat", "ivf_pq",
                             "ivf_pq_refined"}) {
      IndexSpec spec;
      spec.kind = kind;
      spec.hnsw_ef_construction = 100;
      spec.ivf_nlist = 64;
      spec.ivf_nprobe = 8;
      spec.pq_m = 64;
      spec.vamana_degree = 32;
      spec.vamana_beam = 64;
      if (spec.kind == "ivf_pq_refined") {
        spec.kind = "ivf_pq";
        spec.pq_refine_factor = 8;
      }

      Stopwatch build_watch;
      auto index = BuildIndex(spec, corpus);
      // One untimed warm-up query: lazily-built indexes (Vamana) do their
      // graph construction on first search, which belongs in build time.
      index->Search(queries.Row(0), 1);
      const double build_ms = build_watch.ElapsedMillis();

      LatencyHistogram lat;
      std::vector<std::vector<Neighbor>> results(num_queries);
      for (std::size_t q = 0; q < num_queries; ++q) {
        Stopwatch w;
        results[q] = index->Search(queries.Row(q), kTopK);
        lat.Record(w.ElapsedNanos());
      }
      const double recall = MeanRecallAtK(results, truth);

      table.AddRow({std::string(kind), size, build_ms,
                    lat.MeanNanos() / kNanosPerMilli,
                    lat.QuantileNanos(0.99) / kNanosPerMilli, recall});
      LogInfo("{} n={}: query={:.3f}ms recall={:.3f}", kind, size,
              lat.MeanNanos() / kNanosPerMilli, recall);
    }
  }

  std::printf("# Index substrate comparison (latency/recall, §2.2 premise)\n");
  table.Write(std::cout);
  return 0;
}
