// Cluster router plane bench (DESIGN.md §14). Emits BENCH_cluster.json.
//
// Three experiments over an in-process cluster (backend net::Servers on
// loopback ports + a cluster::Router in the same process — the wire
// protocol, scatter-gather and failover paths are all real, only the
// machine boundary is elided):
//
//   single vs routed   The same closed-loop load against one
//                      single-process server over the whole corpus and
//                      against a router over P partitioned backends;
//                      reports qps and p99 for both so the router's
//                      per-hop cost is visible.
//   kill-a-replica     Stops one of a group's two replicas mid-load
//                      (graceful drain, the rolling-restart shape) and
//                      reports the recovery time — the window from the
//                      kill to the first post-kill OK answer — plus how
//                      many client requests failed during it. With the
//                      router retrying drained legs on the surviving
//                      replica the expected failure count is zero.
//   hedged vs unhedged The same 2-group × 2-replica cluster with one
//                      replica of each group stalling every 8th
//                      response by a few ms (ServerOptions debug stall —
//                      the GC/compaction-pause shape). The gate:
//                      hedged p99 <= unhedged p99. Mirrors
//                      shard_scaling's machine-readable skip on <4-core
//                      hosts ("skip_reason" non-null, gate field null).
//
// Flags: --json=PATH --corpus=N --requests=N --quick --force-gate
// (--force-gate runs the hedging comparison even on <4-core hosts — the
// numbers are then noise-prone, but the path stays debuggable there.)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/load_gen.h"
#include "cache/concurrent_cache.h"
#include "cluster/router.h"
#include "cluster/shard_map.h"
#include "embed/hash_embedder.h"
#include "index/index_factory.h"
#include "index/sharded_index.h"
#include "net/client.h"
#include "net/server.h"
#include "rag/batching_driver.h"
#include "workload/benchmark_spec.h"
#include "workload/query_stream.h"

namespace proximity {
namespace {

using SteadyClock = std::chrono::steady_clock;
using bench::ClosedCell;
using bench::EmitStatsJson;
using bench::LoadStats;

// One backend shard server over partition `part`/`parts` — what
// `proximity_cli serve partition=I/N` boots, minus the process
// boundary.
struct Backend {
  HashEmbedder embedder;
  std::unique_ptr<ShardedIndex> index;
  std::unique_ptr<ConcurrentProximityCache> cache;
  std::unique_ptr<BatchingDriver> driver;
  std::unique_ptr<net::Server> server;

  Backend(const Matrix& corpus, std::size_t part, std::size_t parts,
          net::ServerOptions nopts = {}) {
    IndexSpec spec;
    spec.kind = "flat";
    index = BuildPartitionedIndex(spec, corpus, part, parts);
    ProximityCacheOptions copts;
    copts.capacity = 512;
    copts.tolerance = 2.0f;
    cache = std::make_unique<ConcurrentProximityCache>(embedder.dim(),
                                                       copts);
    BatchingDriverOptions dopts;
    dopts.top_k = 5;
    driver = std::make_unique<BatchingDriver>(*index, *cache, &embedder,
                                              dopts);
    server = std::make_unique<net::Server>(*driver, nopts);
    server->Start();
  }

  std::uint16_t port() const { return server->port(); }

  void Stop() {
    if (server) server->Stop();
    if (driver) driver->Shutdown();
  }

  ~Backend() { Stop(); }
};

std::string MapLine(std::uint32_t group, std::uint16_t port) {
  return "shard " + std::to_string(group) + " rpc=127.0.0.1:" +
         std::to_string(port) + "\n";
}

struct KillCell {
  double recovery_ms = 0;
  std::uint64_t failed_during_failover = 0;
  std::uint64_t failovers = 0;
  std::uint64_t retries = 0;
  LoadStats stats;
};

// Offers closed-loop load from one thread while the main thread kills a
// replica; recovery time is the gap from the kill to the next OK.
KillCell RunKillReplica(const Matrix& corpus,
                        const std::vector<std::string>& texts,
                        std::size_t requests) {
  KillCell cell;
  auto victim = std::make_unique<Backend>(corpus, 0, 1);
  Backend survivor(corpus, 0, 1);
  cluster::RouterOptions ropts;
  ropts.workers = 2;
  ropts.hedge = false;
  cluster::Router router(
      cluster::ShardMap::Parse(MapLine(0, victim->port()) +
                               MapLine(0, survivor.port())),
      ropts);
  router.Start();

  std::atomic<std::uint64_t> failed{0};
  std::atomic<bool> killed{false};
  SteadyClock::time_point kill_at{};
  SteadyClock::time_point recovered_at{};
  std::atomic<bool> recovered{false};

  std::thread load([&] {
    net::Client client;
    if (!client.Connect("127.0.0.1", router.port())) return;
    for (std::size_t i = 0; i < requests; ++i) {
      net::Request req;
      req.id = i + 1;
      req.text = texts[i % texts.size()];
      net::Response resp;
      const auto sent = SteadyClock::now();
      if (!client.Call(req, &resp)) {
        ++cell.stats.transport;
        if (!client.Connect("127.0.0.1", router.port())) break;
        continue;
      }
      cell.stats.Record(resp,
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            SteadyClock::now() - sent)
                            .count());
      if (killed.load(std::memory_order_acquire)) {
        if (resp.status != RequestStatus::kOk) {
          ++failed;
        } else if (!recovered.load(std::memory_order_relaxed)) {
          recovered_at = SteadyClock::now();
          recovered.store(true, std::memory_order_release);
        }
      }
    }
  });

  // Let the load warm up, then gracefully stop the victim — the
  // rolling-restart shape: its drain FSM answers in-flight work, new
  // legs get UNAVAILABLE and the router reroutes them.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  kill_at = SteadyClock::now();
  killed.store(true, std::memory_order_release);
  victim->Stop();
  victim.reset();
  load.join();

  cell.failed_during_failover = failed.load();
  if (recovered.load()) {
    cell.recovery_ms =
        std::chrono::duration<double, std::milli>(recovered_at - kill_at)
            .count();
  } else {
    cell.recovery_ms = -1;  // never recovered — the failure count tells
  }
  const cluster::RouterStats rs = router.stats();
  cell.failovers = rs.failovers;
  cell.retries = rs.retries;
  router.Stop();
  return cell;
}

// 2 groups x 2 replicas; one replica per group stalls every 8th
// response. Returns the client-observed stats with hedging on or off.
ClosedCell RunHedgeCell(const Matrix& corpus,
                        const std::vector<std::string>& texts,
                        std::size_t requests, bool hedge) {
  net::ServerOptions stall;
  stall.debug_stall_every = 8;
  stall.debug_stall_us = 4000;
  Backend slow0(corpus, 0, 2, stall);
  Backend fast0(corpus, 0, 2);
  Backend slow1(corpus, 1, 2, stall);
  Backend fast1(corpus, 1, 2);

  cluster::RouterOptions ropts;
  ropts.workers = 2;
  ropts.hedge = hedge;
  ropts.hedge_quantile = 0.9;
  ropts.hedge_warmup = 16;
  cluster::Router router(
      cluster::ShardMap::Parse(
          MapLine(0, slow0.port()) + MapLine(0, fast0.port()) +
          MapLine(1, slow1.port()) + MapLine(1, fast1.port())),
      ropts);
  router.Start();

  bench::ClosedLoopOptions lopts;
  lopts.conns = 2;
  lopts.requests = requests;
  lopts.trace = false;
  ClosedCell cell =
      bench::RunClosedLoop("127.0.0.1", router.port(), texts, lopts);
  router.Stop();
  return cell;
}

int Main(int argc, char** argv) {
  std::string json_path = "BENCH_cluster.json";
  std::size_t corpus_n = 8000;
  std::size_t requests = 2000;
  bool quick = false;
  bool force_gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--corpus=", 9) == 0) {
      corpus_n = static_cast<std::size_t>(std::atoll(argv[i] + 9));
    } else if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      requests = static_cast<std::size_t>(std::atoll(argv[i] + 11));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--force-gate") == 0) {
      force_gate = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (quick) {
    corpus_n = std::min<std::size_t>(corpus_n, 3000);
    requests = std::min<std::size_t>(requests, 600);
  }

  const std::size_t cores = std::thread::hardware_concurrency();
  std::printf("cluster_scaling: corpus=%zu requests=%zu cores=%zu\n",
              corpus_n, requests, cores);

  // Workload: the MMLU-like spec the serving benches share, embedded
  // once — every backend partition and the single-process reference
  // index are built over the same matrix.
  Workload workload = BuildWorkload(MmluLikeSpec(corpus_n, 42));
  QueryStreamOptions sopts;
  sopts.variants_per_question = 4;
  sopts.seed = 1;
  const std::vector<StreamEntry> stream = BuildQueryStream(workload, sopts);
  std::vector<std::string> texts;
  texts.reserve(stream.size());
  for (const auto& entry : stream) texts.push_back(entry.text);
  HashEmbedder embedder;
  const Matrix corpus = embedder.EmbedBatch(workload.passages);

  // --- single process vs routed cluster ------------------------------
  bench::ClosedLoopOptions lopts;
  lopts.conns = 4;
  lopts.requests = requests;
  lopts.trace = false;

  ClosedCell single;
  {
    Backend whole(corpus, 0, 1);
    single = bench::RunClosedLoop("127.0.0.1", whole.port(), texts, lopts);
  }
  const double single_qps =
      single.wall_s > 0 ? single.stats.all.count() / single.wall_s : 0;
  std::printf("single          qps=%9.1f p99=%.2fms ok=%llu\n", single_qps,
              bench::LoadMs(single.stats.all.QuantileNanos(0.99)),
              static_cast<unsigned long long>(single.stats.ok));

  constexpr std::size_t kParts = 3;
  ClosedCell routed;
  cluster::RouterStats routed_stats;
  {
    std::vector<std::unique_ptr<Backend>> backends;
    std::string map_text;
    for (std::size_t p = 0; p < kParts; ++p) {
      backends.push_back(std::make_unique<Backend>(corpus, p, kParts));
      map_text +=
          MapLine(static_cast<std::uint32_t>(p), backends[p]->port());
    }
    cluster::RouterOptions ropts;
    ropts.workers = 4;
    ropts.hedge = false;
    cluster::Router router(cluster::ShardMap::Parse(map_text), ropts);
    router.Start();
    routed = bench::RunClosedLoop("127.0.0.1", router.port(), texts, lopts);
    routed_stats = router.stats();
    router.Stop();
  }
  const double routed_qps =
      routed.wall_s > 0 ? routed.stats.all.count() / routed.wall_s : 0;
  std::printf("routed parts=%zu qps=%9.1f p99=%.2fms ok=%llu legs=%llu\n",
              kParts, routed_qps,
              bench::LoadMs(routed.stats.all.QuantileNanos(0.99)),
              static_cast<unsigned long long>(routed.stats.ok),
              static_cast<unsigned long long>(routed_stats.legs));

  // --- kill-a-replica recovery ---------------------------------------
  const KillCell kill = RunKillReplica(corpus, texts, requests);
  std::printf(
      "kill-replica    recovery=%.1fms failed_during_failover=%llu "
      "failovers=%llu retries=%llu\n",
      kill.recovery_ms,
      static_cast<unsigned long long>(kill.failed_during_failover),
      static_cast<unsigned long long>(kill.failovers),
      static_cast<unsigned long long>(kill.retries));

  // --- hedged vs unhedged tail ---------------------------------------
  // The gate needs 4 backends + router workers + the load loop to run
  // genuinely concurrently; on <4 cores the stall injection serializes
  // and the comparison is noise. Machine-readable skip, mirroring
  // shard_scaling.
  const bool gate_runs = cores >= 4 || force_gate;
  ClosedCell unhedged, hedged;
  double unhedged_p99 = 0, hedged_p99 = 0;
  const char* verdict = "null";
  const char* skip_reason = "null";
  if (gate_runs) {
    unhedged = RunHedgeCell(corpus, texts, requests, /*hedge=*/false);
    hedged = RunHedgeCell(corpus, texts, requests, /*hedge=*/true);
    unhedged_p99 = unhedged.stats.all.QuantileNanos(0.99);
    hedged_p99 = hedged.stats.all.QuantileNanos(0.99);
    verdict = hedged_p99 <= unhedged_p99 ? "true" : "false";
    std::printf("hedging         unhedged_p99=%.2fms hedged_p99=%.2fms "
                "gate=%s\n",
                bench::LoadMs(unhedged_p99), bench::LoadMs(hedged_p99),
                verdict);
  } else {
    skip_reason = "\"cores<4: hedging gate needs real concurrency\"";
    std::printf("hedging         skipped (cores=%zu < 4)\n", cores);
  }

  std::ofstream os(json_path);
  os << "{\n  \"bench\": \"cluster_scaling\",\n  \"corpus\": " << corpus_n
     << ",\n  \"requests\": " << requests
     << ",\n  \"quick\": " << (quick ? "true" : "false")
     << ",\n  \"cores\": " << cores << ",\n  \"parts\": " << kParts
     << ",\n  \"single\": {";
  EmitStatsJson(os, single.stats, single.wall_s);
  os << "},\n  \"routed\": {";
  EmitStatsJson(os, routed.stats, routed.wall_s);
  os << ", \"legs\": " << routed_stats.legs
     << ", \"merge_fallbacks\": " << routed_stats.merge_fallbacks
     << "},\n  \"kill_replica\": {\"recovery_ms\": " << kill.recovery_ms
     << ", \"failed_during_failover\": " << kill.failed_during_failover
     << ", \"failovers\": " << kill.failovers
     << ", \"retries\": " << kill.retries << ", ";
  EmitStatsJson(os, kill.stats, 0);
  os << "},\n  \"hedging\": {\"gate_hedged_p99_le_unhedged\": " << verdict
     << ", \"skip_reason\": " << skip_reason;
  if (gate_runs) {
    os << ",\n    \"unhedged\": {";
    EmitStatsJson(os, unhedged.stats, unhedged.wall_s);
    os << "},\n    \"hedged\": {";
    EmitStatsJson(os, hedged.stats, hedged.wall_s);
    os << "}";
  }
  os << "\n  }\n}\n";
  std::printf("wrote %s\n", json_path.c_str());

  // Hard failures: a routed request that never succeeded, a failover
  // that dropped client requests, or a hedging gate regression.
  if (routed.stats.ok == 0) {
    std::fprintf(stderr, "cluster_scaling: no routed request succeeded\n");
    return 1;
  }
  if (kill.failed_during_failover != 0 || kill.recovery_ms < 0) {
    std::fprintf(stderr,
                 "cluster_scaling: failover dropped %llu client requests "
                 "(recovery_ms=%.1f)\n",
                 static_cast<unsigned long long>(
                     kill.failed_during_failover),
                 kill.recovery_ms);
    return 1;
  }
  // Enforced only when the host gives the gate real concurrency; a
  // --force-gate run still reports the numbers without failing on them.
  if (gate_runs && !force_gate && hedged_p99 > unhedged_p99) {
    std::fprintf(stderr,
                 "cluster_scaling: hedged p99 %.2fms > unhedged %.2fms\n",
                 bench::LoadMs(hedged_p99), bench::LoadMs(unhedged_p99));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace proximity

int main(int argc, char** argv) { return proximity::Main(argc, argv); }
