// A-locality (extension of §4.3.4): "tuning the tolerance parameter and
// cache capacity based on workload characteristics will be critical".
//
// This bench quantifies the "workload characteristics" axis the paper
// leaves implicit: how the cache's value depends on query locality. It
// sweeps (a) the Zipf popularity exponent of a conversational traffic
// stream and (b) the number of prefix variants per question in the
// paper's own protocol, reporting hit rate and latency reduction at a
// fixed (c, tau).
//
// Usage: locality_sweep [corpus=8000] [capacity=200] [tau=2] [seeds=3]
//                       [exponents=0,0.5,1,1.5] [variants=1,2,4,8]
#include <cstdio>
#include <iostream>

#include "common/config.h"
#include "common/csv.h"
#include "common/log.h"
#include "llm/answer_model.h"
#include "rag/experiment.h"
#include "workload/benchmark_spec.h"

int main(int argc, char** argv) {
  using namespace proximity;
  const Config cfg = Config::FromArgs(argc, argv);
  if (cfg.GetBool("quiet", false)) SetLogLevel(LogLevel::kWarn);

  const auto corpus = static_cast<std::size_t>(cfg.GetInt("corpus", 8000));
  const auto capacity = cfg.GetInt("capacity", 200);
  const double tau = cfg.GetDouble("tau", 2.0);
  const auto seeds = static_cast<std::size_t>(cfg.GetInt("seeds", 3));

  CsvTable table({"axis", "value", "hit_rate", "accuracy",
                  "baseline_latency_ms", "cached_latency_ms",
                  "latency_reduction_pct"});

  auto run_axis = [&](const char* axis, double value, SweepConfig sc) {
    SweepRunner runner(std::move(sc));
    double hit = 0, acc = 0, base = 0, cached = 0;
    for (std::size_t s = 0; s < seeds; ++s) {
      const RunMetrics b = runner.RunOne(capacity, 0.0, 1 + s);
      const RunMetrics m = runner.RunOne(capacity, tau, 1 + s);
      hit += m.hit_rate;
      acc += m.accuracy;
      base += b.mean_latency_ms;
      cached += m.mean_latency_ms;
    }
    const double n = static_cast<double>(seeds);
    const double reduction =
        base > 0 ? (1.0 - cached / base) * 100.0 : 0.0;
    table.AddRow({std::string(axis), value, hit / n, acc / n, base / n,
                  cached / n, reduction});
    LogInfo("{}={}: hit={:.3f} reduction={:.1f}%", axis, value, hit / n,
            reduction);
  };

  // Axis 1: Zipf exponent of conversational traffic (0 = uniform).
  for (double exponent : cfg.GetDoubleList("exponents", {0, 0.5, 1, 1.5})) {
    SweepConfig sc;
    sc.workload_spec = MmluLikeSpec(corpus, 42);
    sc.index_spec.kind = "hnsw";
    sc.index_spec.hnsw_ef_construction = 100;
    sc.answer_params = MmluAnswerParams();
    sc.num_seeds = seeds;
    sc.stream_order = StreamOrder::kZipf;
    sc.zipf_length = 2000;
    sc.zipf_exponent = exponent;
    run_axis("zipf_exponent", exponent, std::move(sc));
  }

  // Axis 2: number of prefix variants per question (the paper uses 4).
  for (std::int64_t variants : cfg.GetIntList("variants", {1, 2, 4, 8})) {
    SweepConfig sc;
    sc.workload_spec = MmluLikeSpec(corpus, 42);
    sc.index_spec.kind = "hnsw";
    sc.index_spec.hnsw_ef_construction = 100;
    sc.answer_params = MmluAnswerParams();
    sc.num_seeds = seeds;
    sc.variants_per_question = static_cast<std::size_t>(variants);
    run_axis("variants_per_question", static_cast<double>(variants),
             std::move(sc));
  }

  std::printf("# Query-locality sensitivity (extends §4.3.4)\n");
  table.Write(std::cout);
  return 0;
}
