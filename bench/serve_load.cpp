// Load generator for the net serving front-end (DESIGN.md §9).
//
// Boots the full serving stack in-process (workload -> embedder ->
// sharded index -> concurrent cache -> BatchingDriver -> net::Server on
// an ephemeral loopback port) and drives it two ways:
//
//   closed loop  N connections, each sending its next request the moment
//                the previous response lands. Measures the service
//                capacity of the stack and the client-observed
//                hit-vs-miss latency split.
//   open loop    Poisson arrivals at a target offered QPS, send time
//                decoupled from response time (one sender + one receiver
//                thread per connection; TCP is full duplex). Latency is
//                measured from the *scheduled* arrival, so sender lag
//                cannot hide queueing delay (no coordinated omission).
//
// The open-loop sweep deliberately offers more load than the stack can
// serve at its top rate; with the driver's admission queue bounded, the
// surplus must surface as RESOURCE_EXHAUSTED sheds while the p99 of
// accepted requests stays bounded — the backpressure contract.
//
// Emits BENCH_net.json.
//
// Flags: --json=PATH --corpus=N --requests=N --quick
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/load_gen.h"
#include "cache/concurrent_cache.h"
#include "common/rng.h"
#include "common/stats.h"
#include "embed/hash_embedder.h"
#include "index/index_factory.h"
#include "index/sharded_index.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/trace.h"
#include "rag/batching_driver.h"
#include "workload/benchmark_spec.h"
#include "workload/query_stream.h"

namespace proximity {
namespace {

using SteadyClock = std::chrono::steady_clock;

// Stats, the per-status latency split and the closed-loop driver are
// shared with bench/cluster_scaling through bench/load_gen.h.
using bench::ClosedCell;
using bench::EmitStatsJson;
using bench::LoadStats;

// The serving stack under test, owned for the bench's lifetime.
struct Stack {
  Workload workload;
  HashEmbedder embedder;
  std::unique_ptr<ShardedIndex> index;
  std::unique_ptr<ConcurrentProximityCache> cache;
  std::unique_ptr<BatchingDriver> driver;
  std::unique_ptr<net::Server> server;
  std::vector<StreamEntry> stream;

  void Boot(std::size_t corpus, std::size_t queue_bound) {
    workload = BuildWorkload(MmluLikeSpec(corpus, 42));
    QueryStreamOptions sopts;
    sopts.variants_per_question = 4;
    sopts.seed = 1;
    stream = BuildQueryStream(workload, sopts);

    IndexSpec ispec;
    ispec.kind = "hnsw";
    index = BuildShardedIndex(ispec, embedder.EmbedBatch(workload.passages),
                              {});

    ProximityCacheOptions copts;
    copts.capacity = 200;
    copts.tolerance = 2.0f;
    copts.metric = index->metric();
    cache = std::make_unique<ConcurrentProximityCache>(embedder.dim(),
                                                       copts);

    BatchingDriverOptions dopts;
    dopts.queue_bound = queue_bound;
    driver = std::make_unique<BatchingDriver>(*index, *cache,
                                              &embedder, dopts);
    server = std::make_unique<net::Server>(*driver, net::ServerOptions{});
    server->Start();
  }

  void Teardown() {
    server->Stop();
    driver->Shutdown();
    server.reset();
    driver.reset();
  }
};

ClosedCell RunClosedLoop(const Stack& stack,
                         const std::vector<std::string>& texts,
                         std::size_t conns, std::size_t requests) {
  bench::ClosedLoopOptions opts;
  opts.conns = conns;
  opts.requests = requests;
  // Fresh trace per request: client call + server spans land in the
  // same in-process rings, so the tail sampler keeps whole cross-side
  // traces (exported via --trace-out).
  opts.trace = true;
  return bench::RunClosedLoop("127.0.0.1", stack.server->port(), texts,
                              opts);
}

struct OpenCell {
  double offered_qps = 0;
  std::size_t conns = 0;
  std::size_t requests = 0;
  double wall_s = 0;
  LoadStats stats;
};

OpenCell RunOpenLoop(const Stack& stack, double offered_qps,
                     std::size_t conns, std::size_t requests) {
  OpenCell cell;
  cell.offered_qps = offered_qps;
  cell.conns = conns;
  cell.requests = requests;

  // One global Poisson schedule, partitioned round-robin so every
  // connection carries the same mean rate.
  Rng rng(7);
  std::vector<double> arrival_s(requests);
  double t = 0;
  for (std::size_t i = 0; i < requests; ++i) {
    t += rng.Exponential(offered_qps);
    arrival_s[i] = t;
  }

  std::vector<LoadStats> per_conn(conns);
  std::vector<std::thread> threads;
  threads.reserve(2 * conns);

  std::vector<net::Client> clients(conns);
  std::vector<std::size_t> expected(conns, 0);
  for (std::size_t c = 0; c < conns; ++c) {
    if (!clients[c].Connect("127.0.0.1", stack.server->port())) {
      ++per_conn[c].transport;
      continue;
    }
    for (std::size_t i = c; i < requests; i += conns) ++expected[c];
  }

  const auto t0 = SteadyClock::now();
  for (std::size_t c = 0; c < conns; ++c) {
    if (!clients[c].connected()) continue;
    // Receiver: latency from the *scheduled* arrival of the request id,
    // not the actual send — coordinated-omission-safe.
    threads.emplace_back([&, c] {
      LoadStats& s = per_conn[c];
      for (std::size_t n = 0; n < expected[c]; ++n) {
        net::Response resp;
        if (!clients[c].Recv(&resp)) {
          ++s.transport;
          return;
        }
        const std::size_t idx = static_cast<std::size_t>(resp.id - 1);
        const auto scheduled =
            t0 + std::chrono::duration_cast<SteadyClock::duration>(
                     std::chrono::duration<double>(arrival_s[idx]));
        s.Record(resp,
                 std::chrono::duration_cast<std::chrono::nanoseconds>(
                     SteadyClock::now() - scheduled)
                     .count());
      }
    });
    // Sender: paces sends against the absolute schedule.
    threads.emplace_back([&, c] {
      for (std::size_t i = c; i < requests; i += conns) {
        const auto when =
            t0 + std::chrono::duration_cast<SteadyClock::duration>(
                     std::chrono::duration<double>(arrival_s[i]));
        std::this_thread::sleep_until(when);
        net::Request req;
        req.id = i + 1;
        req.text = stack.stream[i % stack.stream.size()].text;
        if (!clients[c].Send(req)) {
          ++per_conn[c].transport;
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  cell.wall_s = std::chrono::duration<double>(SteadyClock::now() - t0)
                    .count();
  for (const auto& s : per_conn) cell.stats.Merge(s);
  return cell;
}

int Main(int argc, char** argv) {
  std::string json_path = "BENCH_net.json";
  std::string trace_out;
  std::size_t corpus = 10000;
  std::size_t requests = 2000;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--corpus=", 9) == 0) {
      corpus = static_cast<std::size_t>(std::atoll(argv[i] + 9));
    } else if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      requests = static_cast<std::size_t>(std::atoll(argv[i] + 11));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (quick) {
    corpus = std::min<std::size_t>(corpus, 4000);
    requests = std::min<std::size_t>(requests, 600);
  }

  // Bound the admission queue so the overload points of the open-loop
  // sweep shed instead of queueing without bound.
  Stack stack;
  stack.Boot(corpus, /*queue_bound=*/512);
  std::printf("serve_load: corpus=%zu requests=%zu port=%u\n", corpus,
              requests, stack.server->port());

  std::vector<std::string> texts;
  texts.reserve(stack.stream.size());
  for (const auto& entry : stack.stream) texts.push_back(entry.text);

  // Closed loop: capacity and the hit-vs-miss split.
  const std::size_t conn_sweep_full[] = {1, 4, 16};
  const std::size_t conn_sweep_quick[] = {1, 4};
  const auto* conn_sweep = quick ? conn_sweep_quick : conn_sweep_full;
  const std::size_t conn_n = quick ? 2 : 3;

  std::vector<ClosedCell> closed;
  double top_qps = 0;
  for (std::size_t i = 0; i < conn_n; ++i) {
    ClosedCell cell = RunClosedLoop(stack, texts, conn_sweep[i], requests);
    const double qps = cell.wall_s > 0
                           ? static_cast<double>(cell.stats.all.count()) /
                                 cell.wall_s
                           : 0.0;
    top_qps = std::max(top_qps, qps);
    std::printf("closed conns=%-3zu qps=%9.1f p50=%s p99=%s "
                "(hit n=%llu p50=%s | miss n=%llu p50=%s)\n",
                cell.conns, qps,
                FormatNanos(cell.stats.all.QuantileNanos(0.5)).c_str(),
                FormatNanos(cell.stats.all.QuantileNanos(0.99)).c_str(),
                static_cast<unsigned long long>(cell.stats.hit.count()),
                FormatNanos(cell.stats.hit.QuantileNanos(0.5)).c_str(),
                static_cast<unsigned long long>(cell.stats.miss.count()),
                FormatNanos(cell.stats.miss.QuantileNanos(0.5)).c_str());
    closed.push_back(std::move(cell));
  }

  // Open loop: fractions of the measured top rate, the last point past
  // saturation so backpressure has to act.
  const double rates[] = {0.25, 0.75, 1.5};
  std::vector<OpenCell> open;
  for (const double frac : rates) {
    const double offered = std::max(50.0, top_qps * frac);
    OpenCell cell =
        RunOpenLoop(stack, offered, quick ? 2 : 8, requests);
    const double achieved =
        cell.wall_s > 0 ? static_cast<double>(cell.stats.all.count()) /
                              cell.wall_s
                        : 0.0;
    std::printf("open   offered=%9.1f achieved=%9.1f p50=%s p99=%s "
                "shed=%llu\n",
                offered, achieved,
                FormatNanos(cell.stats.all.QuantileNanos(0.5)).c_str(),
                FormatNanos(cell.stats.all.QuantileNanos(0.99)).c_str(),
                static_cast<unsigned long long>(cell.stats.shed));
    open.push_back(std::move(cell));
  }

  const net::ServerStats ns = stack.server->stats();
  const BatchingDriverStats ds = stack.driver->stats();
  stack.Teardown();

  // --trace-out: export the slowest tail-sampled trace of the run as
  // Chrome/Perfetto trace_event JSON (client call + server spans, one
  // process). An empty document is still written when nothing was
  // sampled (PROXIMITY_OBS=OFF) so artifact uploads never break.
  if (!trace_out.empty()) {
    const auto sampled = obs::TraceCollector::Default().Sampled();
    std::ofstream ts(trace_out);
    if (sampled.empty()) {
      ts << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": []}\n";
      std::printf("wrote %s (no sampled traces)\n", trace_out.c_str());
    } else {
      // Prefer the slowest trace that still has its client-call span in
      // the rings (closed-loop requests; the open loop sends raw frames)
      // so the artifact shows both sides of the wire.
      const auto has_client_side = [](const obs::SampledTrace& t) {
        return std::any_of(t.spans.begin(), t.spans.end(),
                           [](const obs::TraceSpanRecord& s) {
                             return s.op == obs::TraceOp::kClientCall;
                           });
      };
      std::optional<obs::SampledTrace> best;
      bool best_client = false;
      for (const auto& t : sampled) {
        auto full = obs::TraceCollector::Default().Find(t.trace_id);
        if (!full.has_value()) full = t;
        const bool client_side = has_client_side(*full);
        const bool better =
            !best.has_value() || (client_side && !best_client) ||
            (client_side == best_client &&
             full->duration_ns > best->duration_ns);
        if (better) {
          best = std::move(full);
          best_client = client_side;
        }
      }
      const auto& trace = *best;
      ts << obs::ToTraceEventJson(trace);
      std::printf("wrote %s (trace 0x%016llx, %zu spans)\n",
                  trace_out.c_str(),
                  static_cast<unsigned long long>(trace.trace_id),
                  trace.spans.size());
    }
  }

  std::ofstream os(json_path);
  os << "{\n  \"bench\": \"serve_load\",\n  \"corpus\": " << corpus
     << ",\n  \"requests_per_cell\": " << requests
     << ",\n  \"quick\": " << (quick ? "true" : "false")
     << ",\n  \"closed_loop\": [\n";
  for (std::size_t i = 0; i < closed.size(); ++i) {
    os << "    {\"conns\": " << closed[i].conns << ", ";
    EmitStatsJson(os, closed[i].stats, closed[i].wall_s);
    os << "}" << (i + 1 < closed.size() ? ",\n" : "\n");
  }
  os << "  ],\n  \"open_loop\": [\n";
  for (std::size_t i = 0; i < open.size(); ++i) {
    os << "    {\"offered_qps\": " << open[i].offered_qps
       << ", \"conns\": " << open[i].conns << ", ";
    EmitStatsJson(os, open[i].stats, open[i].wall_s);
    os << "}" << (i + 1 < open.size() ? ",\n" : "\n");
  }
  os << "  ],\n  \"server\": {\"requests\": " << ns.requests
     << ", \"responses\": " << ns.responses << ", \"shed\": " << ns.shed
     << ", \"abandoned\": " << ns.abandoned
     << ", \"protocol_errors\": " << ns.protocol_errors
     << "},\n  \"driver\": {\"submitted\": " << ds.submitted
     << ", \"completed\": " << ds.completed << ", \"hits\": " << ds.hits
     << ", \"retrieved\": " << ds.retrieved
     << ", \"coalesced\": " << ds.coalesced << ", \"shed\": " << ds.shed
     << ", \"expired\": " << ds.expired << "}\n}\n";
  std::printf("wrote %s\n", json_path.c_str());

  // Sanity gate: every request answered, nothing leaked.
  const bool balanced = ns.requests == ns.responses &&
                        ds.hits + ds.retrieved + ds.coalesced + ds.shed +
                                ds.expired ==
                            ds.submitted;
  if (!balanced) {
    std::fprintf(stderr,
                 "serve_load: conservation violated (requests=%llu "
                 "responses=%llu)\n",
                 static_cast<unsigned long long>(ns.requests),
                 static_cast<unsigned long long>(ns.responses));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace proximity

int main(int argc, char** argv) { return proximity::Main(argc, argv); }
