// Noisy-neighbor isolation bench for the multi-tenant serving layer
// (DESIGN.md §10).
//
// Drives the BatchingDriver directly (pre-embedded queries, so every
// phase measures queueing + cache + search, not the embedder) through
// three phases over the same sharded index:
//
//   solo   the compliant tenant alone, open-loop Poisson pacing at a
//          modest fraction of measured capacity. Its p99 is the
//          baseline any isolation story is judged against.
//   fair   the same compliant load, plus a hostile tenant flooding at
//          10x the compliant rate. The hostile tenant carries a
//          token-bucket quota and the flush runs weighted
//          deficit-round-robin — the isolation machinery under test.
//   fifo   the identical flood with quotas off and `fair=false`
//          (strict global FIFO, the pre-tenancy behavior), recorded as
//          the contrast: what the compliant tenant would have suffered.
//
// Latency is measured from the *scheduled* Poisson arrival to callback
// completion (no coordinated omission). The verdict gate: compliant
// p99 under the fair-mode flood must stay within 2x of solo p99.
//
// Emits BENCH_tenant.json.
//
// Flags: --json=PATH --corpus=N --requests=N --quick
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "index/index_factory.h"
#include "index/sharded_index.h"
#include "rag/batching_driver.h"
#include "tenant/tenant_registry.h"
#include "vecmath/matrix.h"

namespace proximity {
namespace {

using SteadyClock = std::chrono::steady_clock;

constexpr std::size_t kDim = 64;
constexpr TenantId kHostile = 1;
constexpr TenantId kCompliant = 2;

/// One tenant's client-observed outcome tallies. Callbacks arrive from
/// the flusher thread while the sender records transport state, so the
/// mutex is part of the struct.
struct TenantLoad {
  std::mutex mu;
  LatencyHistogram latency;  // scheduled arrival -> completion, kOk only
  std::uint64_t ok = 0, shed = 0, deadline = 0, other = 0;
  std::uint64_t hits = 0;

  void Record(const BatchResult& r, Nanos ns) {
    std::lock_guard<std::mutex> lock(mu);
    switch (r.status) {
      case RequestStatus::kOk:
        ++ok;
        if (r.cache_hit) ++hits;
        latency.Record(ns);
        break;
      case RequestStatus::kResourceExhausted: ++shed; break;
      case RequestStatus::kDeadlineExceeded: ++deadline; break;
      default: ++other; break;
    }
  }
};

/// A tenant's query pool: a bounded set of reusable embeddings (corpus
/// rows + noise), so a warm cache sees repeats — each tenant draws from
/// a DISJOINT corpus region, so any cross-tenant cache reuse would be
/// an isolation bug, not a hit.
Matrix BuildQueryPool(const Matrix& corpus, std::size_t pool,
                      std::size_t lo, std::size_t hi, std::uint64_t seed) {
  Rng rng(seed);
  Matrix queries(pool, corpus.dim());
  for (std::size_t q = 0; q < pool; ++q) {
    const auto row = corpus.Row(lo + rng.Below(hi - lo));
    auto out = queries.MutableRow(q);
    for (std::size_t d = 0; d < corpus.dim(); ++d) {
      out[d] = row[d] + static_cast<float>(rng.Gaussian(0, 0.01));
    }
  }
  return queries;
}

/// Paces `n` submissions for one tenant against an absolute Poisson
/// schedule and records completion latency from the scheduled arrival.
void RunSender(BatchingDriver& driver, TenantId tenant,
               const Matrix& pool, double qps, std::size_t n,
               SteadyClock::time_point t0, std::uint64_t seed,
               TenantLoad& load) {
  Rng rng(seed);
  double at_s = 0;
  for (std::size_t i = 0; i < n; ++i) {
    at_s += rng.Exponential(qps);
    const auto scheduled =
        t0 + std::chrono::duration_cast<SteadyClock::duration>(
                 std::chrono::duration<double>(at_s));
    std::this_thread::sleep_until(scheduled);
    const auto row = pool.Row(rng.Below(pool.rows()));
    SubmitOptions opts;
    opts.tenant = tenant;
    driver.SubmitAsync(std::vector<float>(row.begin(), row.end()), opts,
                       [&load, scheduled](BatchResult r) {
                         const Nanos ns =
                             std::chrono::duration_cast<
                                 std::chrono::nanoseconds>(
                                 SteadyClock::now() - scheduled)
                                 .count();
                         load.Record(r, ns);
                       });
  }
}

/// Checks hits + retrieved + coalesced + shed + expired + quota_shed ==
/// submitted for every tenant of a drained driver.
bool Conserved(const std::map<TenantId, BatchingDriverStats>& per_tenant) {
  for (const auto& [id, s] : per_tenant) {
    if (s.hits + s.retrieved + s.coalesced + s.shed + s.expired +
            s.quota_shed !=
        s.submitted) {
      std::fprintf(stderr,
                   "tenant %u: conservation violated (submitted=%llu)\n",
                   static_cast<unsigned>(id),
                   static_cast<unsigned long long>(s.submitted));
      return false;
    }
  }
  return true;
}

struct PhaseResult {
  TenantLoad compliant, hostile;
  std::map<TenantId, BatchingDriverStats> per_tenant;
  double wall_s = 0;
};

BatchingDriverOptions DriverOptions(bool fair) {
  BatchingDriverOptions dopts;
  dopts.max_batch = 32;
  dopts.max_wait_us = 200;
  dopts.top_k = 10;
  dopts.queue_bound = 2048;
  dopts.fair = fair;
  return dopts;
}

std::unique_ptr<TenantRegistry> MakeRegistry(const ShardedIndex& index,
                                             double hostile_qps) {
  ProximityCacheOptions copts;
  copts.capacity = 256;
  copts.tolerance = 2.0f;
  copts.metric = index.metric();
  TenantRegistryOptions topts;
  topts.cache_defaults = copts;
  auto registry = std::make_unique<TenantRegistry>(index.dim(), topts);

  TenantSpec hostile;
  hostile.id = kHostile;
  hostile.name = "hostile";
  hostile.quota.qps = hostile_qps;  // 0 = unlimited (fifo contrast)
  registry->Register(hostile);

  TenantSpec compliant;
  compliant.id = kCompliant;
  compliant.name = "compliant";
  registry->Register(compliant);
  return registry;
}

/// One phase: the compliant tenant paced at `compliant_qps`; if
/// `flood_qps` > 0 the hostile tenant floods alongside at that rate.
/// `result` is an out-param (TenantLoad owns mutexes, so PhaseResult
/// cannot be returned by value).
void RunPhase(const ShardedIndex& index, const Matrix& compliant_pool,
              const Matrix& hostile_pool, bool fair,
              double hostile_quota_qps, double compliant_qps,
              double flood_qps, std::size_t requests,
              PhaseResult& result) {
  auto registry = MakeRegistry(index, hostile_quota_qps);
  BatchingDriver driver(index, *registry, nullptr, DriverOptions(fair));

  const auto t0 = SteadyClock::now();
  std::vector<std::thread> senders;
  senders.emplace_back([&] {
    RunSender(driver, kCompliant, compliant_pool, compliant_qps, requests,
              t0, 11, result.compliant);
  });
  if (flood_qps > 0) {
    const std::size_t flood_n = static_cast<std::size_t>(
        static_cast<double>(requests) * flood_qps / compliant_qps);
    senders.emplace_back([&] {
      RunSender(driver, kHostile, hostile_pool, flood_qps, flood_n, t0, 13,
                result.hostile);
    });
  }
  for (auto& t : senders) t.join();
  driver.Shutdown();
  result.wall_s =
      std::chrono::duration<double>(SteadyClock::now() - t0).count();
  result.per_tenant = driver.tenant_stats();
}

/// Closed-loop capacity probe: `threads` workers submit back-to-back for
/// the compliant tenant; returns completed queries per second.
double MeasureCapacity(const ShardedIndex& index, const Matrix& pool,
                       std::size_t threads, std::size_t per_thread) {
  auto registry = MakeRegistry(index, 0);
  BatchingDriver driver(index, *registry, nullptr, DriverOptions(true));
  const auto t0 = SteadyClock::now();
  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      Rng rng(100 + w);
      for (std::size_t i = 0; i < per_thread; ++i) {
        const auto row = pool.Row(rng.Below(pool.rows()));
        (void)driver.Query(row);
      }
    });
  }
  for (auto& t : workers) t.join();
  const double wall_s =
      std::chrono::duration<double>(SteadyClock::now() - t0).count();
  driver.Shutdown();
  return wall_s > 0
             ? static_cast<double>(threads * per_thread) / wall_s
             : 0.0;
}

double Ms(double ns) { return ns / 1e6; }

void EmitTenantJson(std::ofstream& os, TenantLoad& load) {
  std::lock_guard<std::mutex> lock(load.mu);
  os << "{\"ok\": " << load.ok << ", \"cache_hits\": " << load.hits
     << ", \"shed\": " << load.shed
     << ", \"deadline_exceeded\": " << load.deadline
     << ", \"other\": " << load.other
     << ", \"p50_ms\": " << Ms(load.latency.QuantileNanos(0.50))
     << ", \"p99_ms\": " << Ms(load.latency.QuantileNanos(0.99)) << "}";
}

void EmitDriverJson(std::ofstream& os, const BatchingDriverStats& s) {
  os << "{\"submitted\": " << s.submitted << ", \"hits\": " << s.hits
     << ", \"retrieved\": " << s.retrieved
     << ", \"coalesced\": " << s.coalesced << ", \"shed\": " << s.shed
     << ", \"expired\": " << s.expired
     << ", \"quota_shed\": " << s.quota_shed << "}";
}

int Main(int argc, char** argv) {
  std::string json_path = "BENCH_tenant.json";
  std::size_t corpus_n = 20000;
  std::size_t requests = 2000;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--corpus=", 9) == 0) {
      corpus_n = static_cast<std::size_t>(std::atoll(argv[i] + 9));
    } else if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      requests = static_cast<std::size_t>(std::atoll(argv[i] + 11));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (quick) {
    corpus_n = std::min<std::size_t>(corpus_n, 5000);
    requests = std::min<std::size_t>(requests, 500);
  }

  // Random corpus, hnsw shards (the serving default); each tenant's
  // query pool draws from its own half of the corpus.
  Rng rng(42);
  Matrix corpus(corpus_n, kDim);
  for (std::size_t r = 0; r < corpus_n; ++r) {
    auto row = corpus.MutableRow(r);
    for (auto& x : row) x = static_cast<float>(rng.Gaussian(0, 1));
  }
  IndexSpec ispec;
  ispec.kind = "hnsw";
  auto index = BuildShardedIndex(ispec, corpus, {});

  const Matrix compliant_pool =
      BuildQueryPool(corpus, 200, 0, corpus_n / 2, 7);
  const Matrix hostile_pool =
      BuildQueryPool(corpus, 200, corpus_n / 2, corpus_n, 9);

  const double capacity =
      MeasureCapacity(*index, compliant_pool, 4, quick ? 200 : 500);
  // Compliant load sits well inside capacity; the flood offers 10x that
  // — around or beyond what the stack can absorb.
  const double compliant_qps = std::max(100.0, capacity * 0.08);
  const double flood_qps = 10.0 * compliant_qps;
  // The hostile quota admits twice the compliant rate: generous, yet
  // the 10x flood must overflow it, so quota_shed has to show up.
  const double hostile_quota = 2.0 * compliant_qps;
  std::printf(
      "tenant_isolation: corpus=%zu requests=%zu capacity=%.0f qps "
      "compliant=%.0f flood=%.0f quota=%.0f\n",
      corpus_n, requests, capacity, compliant_qps, flood_qps,
      hostile_quota);

  PhaseResult solo, fair, fifo;
  RunPhase(*index, compliant_pool, hostile_pool, true, 0, compliant_qps,
           0, requests, solo);
  RunPhase(*index, compliant_pool, hostile_pool, true, hostile_quota,
           compliant_qps, flood_qps, requests, fair);
  RunPhase(*index, compliant_pool, hostile_pool, false, 0, compliant_qps,
           flood_qps, requests, fifo);

  const double solo_p99 = solo.compliant.latency.QuantileNanos(0.99);
  const double fair_p99 = fair.compliant.latency.QuantileNanos(0.99);
  const double fifo_p99 = fifo.compliant.latency.QuantileNanos(0.99);
  const double ratio = solo_p99 > 0 ? fair_p99 / solo_p99 : 0.0;
  // The 2x gate carries a small absolute slack: both phases' p99 sits
  // in the hundreds of microseconds, where a single scheduler stall of
  // the flusher thread shows up whole. Real starvation — queueing
  // behind a queue_bound-deep flood backlog — is tens of milliseconds
  // and sails past the slack.
  constexpr double kSlackNs = 2e6;  // 2 ms
  const bool within_2x = fair_p99 <= 2.0 * solo_p99 + kSlackNs;
  const std::uint64_t quota_shed = fair.per_tenant.count(kHostile)
                                       ? fair.per_tenant[kHostile].quota_shed
                                       : 0;
  std::printf("solo  compliant p99=%s\n", FormatNanos(solo_p99).c_str());
  std::printf("fair  compliant p99=%s (hostile quota_shed=%llu)\n",
              FormatNanos(fair_p99).c_str(),
              static_cast<unsigned long long>(quota_shed));
  std::printf("fifo  compliant p99=%s\n", FormatNanos(fifo_p99).c_str());
  std::printf("verdict: fair/solo p99 ratio %.2f -> %s\n", ratio,
              within_2x ? "within 2x" : "ISOLATION BREACH");

  std::ofstream os(json_path);
  os << "{\n  \"bench\": \"tenant_isolation\",\n  \"corpus\": " << corpus_n
     << ",\n  \"requests\": " << requests
     << ",\n  \"quick\": " << (quick ? "true" : "false")
     << ",\n  \"capacity_qps\": " << capacity
     << ",\n  \"compliant_qps\": " << compliant_qps
     << ",\n  \"flood_qps\": " << flood_qps
     << ",\n  \"hostile_quota_qps\": " << hostile_quota
     << ",\n  \"solo\": {\"compliant\": ";
  EmitTenantJson(os, solo.compliant);
  os << "},\n  \"fair\": {\"compliant\": ";
  EmitTenantJson(os, fair.compliant);
  os << ", \"hostile\": ";
  EmitTenantJson(os, fair.hostile);
  os << ",\n    \"driver_compliant\": ";
  EmitDriverJson(os, fair.per_tenant[kCompliant]);
  os << ",\n    \"driver_hostile\": ";
  EmitDriverJson(os, fair.per_tenant[kHostile]);
  os << "},\n  \"fifo\": {\"compliant\": ";
  EmitTenantJson(os, fifo.compliant);
  os << ", \"hostile\": ";
  EmitTenantJson(os, fifo.hostile);
  os << "},\n  \"verdict\": {\"fair_over_solo_p99\": " << ratio
     << ", \"slack_ms\": " << Ms(kSlackNs)
     << ", \"within_2x\": " << (within_2x ? "true" : "false")
     << ", \"hostile_quota_shed\": " << quota_shed << "}\n}\n";
  std::printf("wrote %s\n", json_path.c_str());

  // Gates: per-tenant conservation in every phase; the quota must have
  // actually fired under the fair-mode flood; isolation must hold.
  if (!Conserved(solo.per_tenant) || !Conserved(fair.per_tenant) ||
      !Conserved(fifo.per_tenant)) {
    return 1;
  }
  if (quota_shed == 0) {
    std::fprintf(stderr, "tenant_isolation: flood never hit the quota\n");
    return 1;
  }
  if (!within_2x) {
    std::fprintf(stderr,
                 "tenant_isolation: fair-mode compliant p99 %.2fx solo "
                 "(past the %.0fms slack)\n",
                 ratio, Ms(kSlackNs));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace proximity

int main(int argc, char** argv) { return proximity::Main(argc, argv); }
